//! Run metrics.
//!
//! Collects, per period and per run, exactly the quantities the paper's
//! evaluation plots: missed-deadline ratio, average CPU utilization,
//! average network utilization, and average number of subtask replicas
//! (Figs. 9, 11, 12), from which the combined metric (Fig. 10/13) is
//! computed in `rtds-arm`.

use crate::time::{SimDuration, SimTime};

/// Per-period record for one task.
#[derive(Debug, Clone)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct PeriodRecord {
    /// Instance number.
    pub instance: u64,
    /// Release time.
    pub released: SimTime,
    /// Data items this period.
    pub tracks: u64,
    /// Replica count per stage, frozen at release.
    pub replicas_per_stage: Vec<u32>,
    /// End-to-end latency; `None` if shed or unfinished at the horizon.
    pub end_to_end: Option<SimDuration>,
    /// Deadline outcome; `None` if undecided at the horizon (the instance
    /// was still running and its deadline had not yet passed).
    pub missed: Option<bool>,
    /// True if admission control shed this instance.
    pub shed: bool,
}

/// Per-stage, per-instance latency record (filled at instance
/// completion) — the raw material for budget-breakdown analyses.
#[derive(Debug, Clone, Copy, PartialEq)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct StageRecord {
    /// Owning task index.
    pub task: u32,
    /// Instance number.
    pub instance: u64,
    /// Stage index within the pipeline.
    pub stage: u32,
    /// Replica count the stage ran with.
    pub replicas: u32,
    /// Worst per-replica execution latency, ms.
    pub exec_ms: f64,
    /// Worst per-replica inbound message delay, ms.
    pub msg_ms: f64,
}

/// Which forecast a residual statistic grades.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[derive(serde::Serialize, serde::Deserialize)]
pub enum ResidualKind {
    /// Execution-latency forecast (the paper's Eq. (3) regression `eex`).
    Exec,
    /// Communication-delay forecast (Eqs. (4)–(6), `ecd`).
    Comm,
}

/// Accumulated predicted-vs-observed residuals for one (task, stage,
/// kind) forecast stream — how good the paper's Eq. (3)/(4) predictors
/// actually were against what the simulator then measured.
///
/// Controllers that forecast (the predictive manager) fill these in
/// during the run; [`RunMetrics::forecast_residuals`] carries them out.
/// Policies that never forecast leave the list empty.
#[derive(Debug, Clone, Copy, PartialEq)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct ForecastResidualStat {
    /// Owning task index.
    pub task: u32,
    /// Stage index within the pipeline.
    pub stage: u32,
    /// Which forecast this row grades.
    pub kind: ResidualKind,
    /// Observations accumulated.
    pub count: u64,
    /// Sum of |predicted − observed| in ms (mean = sum / count).
    pub sum_abs_err_ms: f64,
    /// Worst single absolute error, ms.
    pub max_abs_err_ms: f64,
    /// Sum of |predicted − observed| / observed over observations with
    /// observed > 0 (for MAPE).
    pub sum_abs_pct_err: f64,
    /// Observations entering `sum_abs_pct_err` (observed > 0).
    pub pct_count: u64,
}

impl ForecastResidualStat {
    /// An empty accumulator for one forecast stream.
    pub fn new(task: u32, stage: u32, kind: ResidualKind) -> Self {
        ForecastResidualStat {
            task,
            stage,
            kind,
            count: 0,
            sum_abs_err_ms: 0.0,
            max_abs_err_ms: 0.0,
            sum_abs_pct_err: 0.0,
            pct_count: 0,
        }
    }

    /// Folds in one predicted-vs-observed pair (both in ms).
    pub fn observe(&mut self, predicted_ms: f64, observed_ms: f64) {
        let err = (predicted_ms - observed_ms).abs();
        self.count += 1;
        self.sum_abs_err_ms += err;
        if err > self.max_abs_err_ms {
            self.max_abs_err_ms = err;
        }
        if observed_ms > 0.0 {
            self.sum_abs_pct_err += err / observed_ms;
            self.pct_count += 1;
        }
    }

    /// Mean absolute error, ms; NaN with no observations.
    pub fn mean_abs_err_ms(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum_abs_err_ms / self.count as f64
        }
    }

    /// Mean absolute percentage error, percent; NaN with no observations
    /// of positive observed latency.
    pub fn mape_pct(&self) -> f64 {
        if self.pct_count == 0 {
            f64::NAN
        } else {
            100.0 * self.sum_abs_pct_err / self.pct_count as f64
        }
    }
}

/// Everything measured during one simulation run.
#[derive(Debug, Clone, Default)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct RunMetrics {
    /// Period records, one per released instance per task, in release order.
    pub periods: Vec<PeriodRecord>,
    /// Raw per-interval CPU utilization samples: `samples[k][node]`.
    pub cpu_samples: Vec<Vec<f64>>,
    /// Raw per-interval network utilization samples.
    pub net_samples: Vec<f64>,
    /// Lifetime-average CPU utilization per node, `[0, 1]`, filled at
    /// finalization from exact busy-time integrals.
    pub cpu_lifetime_util: Vec<f64>,
    /// Lifetime-average network utilization, `[0, 1]`.
    pub net_lifetime_util: f64,
    /// Total simulated time.
    pub horizon: SimDuration,
    /// Total application bytes offered to the network.
    pub bytes_offered: u64,
    /// Total messages offered to the network.
    pub messages_offered: u64,
    /// Number of replication / shutdown placement changes applied.
    pub placement_changes: u64,
    /// Number of controller actions rejected as invalid.
    pub rejected_actions: u64,
    /// Messages lost for good: delivered to a dead node with no
    /// retransmission pending, purged when their sender crashed, or
    /// abandoned after the retransmit budget ran out. Redundant copies of
    /// data that already reached its destination never count.
    pub messages_lost: u64,
    /// Messages corrupted by the lossy bus (wire time burned, nothing
    /// delivered). Always 0 unless `BusConfig::drop_prob` is set.
    pub messages_dropped: u64,
    /// Spurious duplicates injected by the bus (suppressed at receivers).
    pub messages_duplicated: u64,
    /// Sender-side retransmissions performed.
    pub retransmits: u64,
    /// Node crash–restart cycles completed.
    pub node_restarts: u64,
    /// Per-stage latency records, one row per (instance, stage) of every
    /// completed instance.
    pub stage_records: Vec<StageRecord>,
    /// Predicted-vs-observed forecast residuals per (task, stage, kind),
    /// reported by the controller at finalization; empty for policies
    /// that never forecast.
    pub forecast_residuals: Vec<ForecastResidualStat>,
}

/// Aggregate summary over a run — the four per-figure metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct RunSummary {
    /// Missed-deadline percentage over decided instances, `[0, 100]`.
    pub missed_deadline_pct: f64,
    /// Average CPU utilization over nodes and time, percent.
    pub avg_cpu_util_pct: f64,
    /// Average network utilization over time, percent.
    pub avg_net_util_pct: f64,
    /// Average replicas per replicable stage, time-averaged over periods.
    pub avg_replicas: f64,
    /// Number of decided instances (completed or shed).
    pub decided_periods: usize,
    /// Number of released instances.
    pub released_periods: usize,
    /// Placement changes applied during the run.
    pub placement_changes: u64,
}

/// Distribution summary of end-to-end latencies over a run.
#[derive(Debug, Clone, Copy, PartialEq)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct LatencyDistribution {
    /// Minimum, milliseconds.
    pub min_ms: f64,
    /// Median (p50).
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Maximum.
    pub max_ms: f64,
    /// Mean.
    pub mean_ms: f64,
    /// Completed instances the distribution covers.
    pub n: usize,
}

/// Nearest-rank percentile of a sorted slice (q in [0, 1]); NaN for an
/// empty slice (there is no order statistic to report).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        // The old `.clamp(1, sorted.len())` below panicked with
        // "min > max" here — in release builds too, where the
        // debug_assert that was meant to catch it is compiled out.
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

impl RunMetrics {
    /// End-to-end latency distribution over completed instances; `None`
    /// if nothing completed.
    pub fn latency_distribution(&self) -> Option<LatencyDistribution> {
        let mut ls: Vec<f64> = self
            .periods
            .iter()
            .filter_map(|p| p.end_to_end.map(|d| d.as_millis_f64()))
            .collect();
        if ls.is_empty() {
            return None;
        }
        ls.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let n = ls.len();
        Some(LatencyDistribution {
            min_ms: ls[0],
            p50_ms: percentile(&ls, 0.50),
            p95_ms: percentile(&ls, 0.95),
            p99_ms: percentile(&ls, 0.99),
            max_ms: ls[n - 1],
            mean_ms: ls.iter().sum::<f64>() / n as f64,
            n,
        })
    }

    /// Mean (exec, msg) latency per stage over completed instances of the
    /// given task; empty if nothing completed.
    pub fn mean_stage_breakdown(&self, task: u32) -> Vec<(f64, f64)> {
        let mut sums: Vec<(f64, f64, usize)> = Vec::new();
        for r in self.stage_records.iter().filter(|r| r.task == task) {
            let j = r.stage as usize;
            if sums.len() <= j {
                sums.resize(j + 1, (0.0, 0.0, 0));
            }
            sums[j].0 += r.exec_ms;
            sums[j].1 += r.msg_ms;
            sums[j].2 += 1;
        }
        sums.into_iter()
            .map(|(e, m, n)| {
                let n = n.max(1) as f64;
                (e / n, m / n)
            })
            .collect()
    }

    /// Longest run of consecutive decided-and-missed periods — the
    /// worst sustained outage a mission would experience.
    pub fn longest_miss_streak(&self) -> usize {
        let mut best = 0;
        let mut cur = 0;
        for p in &self.periods {
            if p.missed == Some(true) {
                cur += 1;
                best = best.max(cur);
            } else if p.missed == Some(false) {
                cur = 0;
            }
        }
        best
    }

    /// Summarizes the run. `replicable_stages` selects which stages'
    /// replica counts enter the replica average (the paper averages over
    /// the replicable subtasks only — the others are pinned at 1).
    pub fn summarize(&self, replicable_stages: &[usize]) -> RunSummary {
        let decided: Vec<&PeriodRecord> =
            self.periods.iter().filter(|p| p.missed.is_some()).collect();
        let missed = decided.iter().filter(|p| p.missed == Some(true)).count();
        let missed_pct = if decided.is_empty() {
            0.0
        } else {
            100.0 * missed as f64 / decided.len() as f64
        };

        let avg_cpu = if self.cpu_lifetime_util.is_empty() {
            0.0
        } else {
            100.0 * self.cpu_lifetime_util.iter().sum::<f64>()
                / self.cpu_lifetime_util.len() as f64
        };

        let avg_replicas = if self.periods.is_empty() || replicable_stages.is_empty() {
            0.0
        } else {
            let per_period: f64 = self
                .periods
                .iter()
                .map(|p| {
                    let s: u32 = replicable_stages
                        .iter()
                        .filter_map(|&i| p.replicas_per_stage.get(i))
                        .sum();
                    s as f64 / replicable_stages.len() as f64
                })
                .sum();
            per_period / self.periods.len() as f64
        };

        RunSummary {
            missed_deadline_pct: missed_pct,
            avg_cpu_util_pct: avg_cpu,
            avg_net_util_pct: 100.0 * self.net_lifetime_util,
            avg_replicas,
            decided_periods: decided.len(),
            released_periods: self.periods.len(),
            placement_changes: self.placement_changes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(missed: Option<bool>, replicas: Vec<u32>) -> PeriodRecord {
        PeriodRecord {
            instance: 0,
            released: SimTime::ZERO,
            tracks: 100,
            replicas_per_stage: replicas,
            end_to_end: Some(SimDuration::from_millis(500)),
            missed,
            shed: false,
        }
    }

    #[test]
    fn missed_pct_ignores_undecided() {
        let m = RunMetrics {
            periods: vec![
                record(Some(true), vec![1, 1]),
                record(Some(false), vec![1, 1]),
                record(Some(false), vec![1, 1]),
                record(None, vec![1, 1]),
            ],
            cpu_lifetime_util: vec![0.5, 0.3],
            net_lifetime_util: 0.2,
            ..Default::default()
        };
        let s = m.summarize(&[0]);
        assert!((s.missed_deadline_pct - 100.0 / 3.0).abs() < 1e-9);
        assert_eq!(s.decided_periods, 3);
        assert_eq!(s.released_periods, 4);
    }

    #[test]
    fn cpu_util_averages_over_nodes() {
        let m = RunMetrics {
            cpu_lifetime_util: vec![0.2, 0.4, 0.6],
            ..Default::default()
        };
        assert!((m.summarize(&[]).avg_cpu_util_pct - 40.0).abs() < 1e-9);
    }

    #[test]
    fn replica_average_uses_only_replicable_stages() {
        let m = RunMetrics {
            periods: vec![
                record(Some(false), vec![1, 2, 1, 4]),
                record(Some(false), vec![1, 4, 1, 6]),
            ],
            ..Default::default()
        };
        // Replicable stages 1 and 3: period means (2+4)/2=3 and (4+6)/2=5.
        let s = m.summarize(&[1, 3]);
        assert!((s.avg_replicas - 4.0).abs() < 1e-9, "{}", s.avg_replicas);
    }

    #[test]
    fn empty_run_summarizes_to_zeros() {
        let s = RunMetrics::default().summarize(&[0]);
        assert_eq!(s.missed_deadline_pct, 0.0);
        assert_eq!(s.avg_cpu_util_pct, 0.0);
        assert_eq!(s.avg_replicas, 0.0);
        assert_eq!(s.decided_periods, 0);
    }

    #[test]
    fn latency_distribution_orders_percentiles() {
        let mut m = RunMetrics::default();
        for i in 1..=100u64 {
            m.periods.push(PeriodRecord {
                instance: i,
                released: SimTime::ZERO,
                tracks: 0,
                replicas_per_stage: vec![1],
                end_to_end: Some(SimDuration::from_millis(i)),
                missed: Some(false),
                shed: false,
            });
        }
        let d = m.latency_distribution().unwrap();
        assert_eq!(d.n, 100);
        assert_eq!(d.min_ms, 1.0);
        assert_eq!(d.p50_ms, 50.0);
        assert_eq!(d.p95_ms, 95.0);
        assert_eq!(d.p99_ms, 99.0);
        assert_eq!(d.max_ms, 100.0);
        assert!((d.mean_ms - 50.5).abs() < 1e-9);
        assert!(d.min_ms <= d.p50_ms && d.p50_ms <= d.p95_ms);
        assert!(d.p95_ms <= d.p99_ms && d.p99_ms <= d.max_ms);
    }

    #[test]
    fn latency_distribution_empty_run_is_none() {
        assert!(RunMetrics::default().latency_distribution().is_none());
    }

    #[test]
    fn miss_streak_finds_longest_consecutive_run() {
        let mk = |missed: Option<bool>| PeriodRecord {
            instance: 0,
            released: SimTime::ZERO,
            tracks: 0,
            replicas_per_stage: vec![],
            end_to_end: None,
            missed,
            shed: false,
        };
        let mut m = RunMetrics::default();
        for v in [
            Some(true), Some(true), Some(false), Some(true), Some(true),
            Some(true), None, Some(true), Some(false),
        ] {
            m.periods.push(mk(v));
        }
        // Undecided periods do not break a streak (the instance may still
        // be running); streak of 3 then the None then 1 more = 4.
        assert_eq!(m.longest_miss_streak(), 4);
        assert_eq!(RunMetrics::default().longest_miss_streak(), 0);
    }

    #[test]
    fn stage_breakdown_averages_per_stage() {
        let mut m = RunMetrics::default();
        for (inst, exec) in [(0u64, 10.0f64), (1, 20.0)] {
            for stage in 0..2u32 {
                m.stage_records.push(StageRecord {
                    task: 0,
                    instance: inst,
                    stage,
                    replicas: 1,
                    exec_ms: exec + stage as f64,
                    msg_ms: 2.0,
                });
            }
        }
        // A record of another task must not leak in.
        m.stage_records.push(StageRecord {
            task: 1,
            instance: 0,
            stage: 0,
            replicas: 1,
            exec_ms: 999.0,
            msg_ms: 999.0,
        });
        let b = m.mean_stage_breakdown(0);
        assert_eq!(b.len(), 2);
        assert!((b[0].0 - 15.0).abs() < 1e-12);
        assert!((b[1].0 - 16.0).abs() < 1e-12);
        assert!((b[0].1 - 2.0).abs() < 1e-12);
        assert!(m.mean_stage_breakdown(7).is_empty());
    }

    #[test]
    fn percentile_of_empty_slice_is_nan_not_panic() {
        // Regression: `.clamp(1, sorted.len())` on an empty slice used to
        // panic with "min > max" — in release builds too.
        assert!(percentile(&[], 0.5).is_nan());
        assert!(percentile(&[], 0.0).is_nan());
        assert!(percentile(&[], 1.0).is_nan());
        // Non-empty behavior unchanged.
        assert_eq!(percentile(&[3.0], 0.99), 3.0);
    }

    #[test]
    fn forecast_residual_stat_tracks_mean_max_and_mape() {
        let mut s = ForecastResidualStat::new(0, 1, ResidualKind::Exec);
        assert!(s.mean_abs_err_ms().is_nan());
        assert!(s.mape_pct().is_nan());
        s.observe(110.0, 100.0); // err 10, pct 10%
        s.observe(80.0, 100.0); // err 20, pct 20%
        s.observe(5.0, 0.0); // err 5, no pct contribution
        assert_eq!(s.count, 3);
        assert!((s.mean_abs_err_ms() - 35.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.max_abs_err_ms, 20.0);
        assert_eq!(s.pct_count, 2);
        assert!((s.mape_pct() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn net_util_is_percent() {
        let m = RunMetrics {
            net_lifetime_util: 0.35,
            ..Default::default()
        };
        assert!((m.summarize(&[]).avg_net_util_pct - 35.0).abs() < 1e-9);
    }
}
