//! The control-plane interface between the simulator and a resource
//! manager.
//!
//! The paper's Fig. 1 shows the loop: the application reports "performance
//! data and resource utilization metrics on a global time scale" to the
//! resource manager, which responds with "candidate subtasks for
//! replication, number of replicas, their processors". This module is that
//! arrow pair: at every period boundary the cluster hands a [`Controller`]
//! the finished-instance observations plus a [`ControlContext`] snapshot of
//! resource state, and the controller answers with [`ControlAction`]s that
//! the cluster applies before releasing the next instance.
//!
//! Keeping this interface in the simulator crate (and free of any
//! regression machinery) lets the predictive algorithm, the non-predictive
//! baseline, and any future policy plug in symmetrically.

use std::sync::Arc;

use crate::ids::{NodeId, SubtaskIdx, TaskId};
use crate::time::{SimDuration, SimTime};

/// Per-stage observation extracted from one completed period instance.
#[derive(Debug, Clone)]
pub struct StageObservation {
    /// Stage position in the pipeline.
    pub subtask: SubtaskIdx,
    /// Replica count the stage ran with.
    pub replicas: u32,
    /// Total data items the stage processed (before splitting).
    pub tracks: u64,
    /// Worst per-replica execution latency (job release → completion).
    pub exec_latency: SimDuration,
    /// Worst per-replica inbound message delay (buffer + transmission);
    /// zero for the first stage, which is fed directly by the sensor.
    pub inbound_msg_delay: SimDuration,
    /// Stage wall time: predecessor completion → all replicas done.
    pub stage_latency: SimDuration,
}

/// Observation of one completed (or shed) period instance.
#[derive(Debug, Clone)]
pub struct PeriodObservation {
    /// Owning task.
    pub task: TaskId,
    /// Instance number.
    pub instance: u64,
    /// Release time.
    pub released: SimTime,
    /// Data items that arrived this period: `ds(T_i, c)`.
    pub tracks: u64,
    /// End-to-end latency; `None` for shed instances.
    pub end_to_end: Option<SimDuration>,
    /// Whether the end-to-end deadline was missed (shed counts as missed).
    pub missed: bool,
    /// Per-stage details; empty for shed instances.
    pub stages: Vec<StageObservation>,
}

/// Snapshot of cluster resource state offered to the controller, on the
/// global time scale.
#[derive(Debug, Clone)]
pub struct ControlContext {
    /// Current global time.
    pub now: SimTime,
    /// Observed CPU utilization `ut(p, t)` per node, **percent**.
    pub node_util_pct: Vec<f64>,
    /// Liveness per node; dead nodes (fault injection) must not receive
    /// replicas.
    pub alive: Vec<bool>,
    /// Cold-start flag per node: true for a node that recently restarted
    /// after a crash and whose utilization estimate has not warmed up yet.
    /// Controllers should treat a cold node's `node_util_pct` entry as
    /// *missing* (fall back to a prior) rather than as a real zero.
    pub cold: Vec<bool>,
    /// Current placement (`PS(st)`) per task, per stage. Each task's entry
    /// shares the runtime's placement `Arc` (no per-snapshot deep clone);
    /// `Deref` makes `ctx.placements[t][stage]` read as before.
    pub placements: Vec<Arc<Vec<Vec<NodeId>>>>,
    /// Replicability per task, per stage.
    pub replicable: Vec<Vec<bool>>,
    /// Period of each task.
    pub periods: Vec<SimDuration>,
    /// Relative end-to-end deadline of each task.
    pub deadlines: Vec<SimDuration>,
    /// Most recent per-task workload `ds(T_i, c)` in tracks.
    pub last_tracks: Vec<u64>,
}

impl ControlContext {
    /// Total periodic workload `Σ_i ds(T_i, c)` across all tasks — the
    /// regressor of Eq. (5).
    pub fn total_tracks(&self) -> u64 {
        self.last_tracks.iter().sum()
    }

    /// Number of processors in the cluster.
    pub fn n_nodes(&self) -> usize {
        self.node_util_pct.len()
    }

    /// The least-utilized **alive** node not already in `exclude`, if any
    /// — step 3 of Fig. 5. Ties break toward the lower node id,
    /// deterministically.
    pub fn least_utilized_excluding(&self, exclude: &[NodeId]) -> Option<NodeId> {
        (0..self.n_nodes())
            .map(NodeId::from_index)
            .filter(|n| self.alive[n.index()] && !exclude.contains(n))
            .min_by(|a, b| {
                self.node_util_pct[a.index()]
                    .partial_cmp(&self.node_util_pct[b.index()])
                    .expect("utilization is never NaN")
                    .then(a.cmp(b))
            })
    }
}

/// An action the controller asks the cluster to apply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlAction {
    /// Replace the replica set of one stage (effective next release).
    SetPlacement {
        /// Target task.
        task: TaskId,
        /// Target stage.
        subtask: SubtaskIdx,
        /// New ordered replica set; first entry is the original processor.
        nodes: Vec<NodeId>,
    },
}

/// A resource-management policy plugged into the simulation loop.
pub trait Controller: Send {
    /// Invoked at each period boundary of each task, before the next
    /// release. `completed` holds observations of instances that finished
    /// since the previous invocation (usually one; more after a backlog
    /// drains, none while an instance overruns).
    fn on_period_boundary(
        &mut self,
        completed: &[PeriodObservation],
        ctx: &ControlContext,
    ) -> Vec<ControlAction>;

    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Predicted-vs-observed forecast residuals accumulated over the run,
    /// harvested by the cluster at finalization into
    /// [`crate::metrics::RunMetrics::forecast_residuals`]. Policies that
    /// never forecast report nothing — the default.
    fn forecast_residuals(&self) -> Vec<crate::metrics::ForecastResidualStat> {
        Vec::new()
    }
}

/// A controller that never adapts; the no-management baseline.
pub struct NullController;

impl Controller for NullController {
    fn on_period_boundary(
        &mut self,
        _completed: &[PeriodObservation],
        _ctx: &ControlContext,
    ) -> Vec<ControlAction> {
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "none"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(utils: Vec<f64>) -> ControlContext {
        ControlContext {
            now: SimTime::from_secs(1),
            alive: vec![true; utils.len()],
            cold: vec![false; utils.len()],
            node_util_pct: utils,
            placements: vec![Arc::new(vec![vec![NodeId(0)]])],
            replicable: vec![vec![true]],
            periods: vec![SimDuration::from_secs(1)],
            deadlines: vec![SimDuration::from_millis(990)],
            last_tracks: vec![1500, 300],
        }
    }

    #[test]
    fn total_tracks_sums_all_tasks() {
        assert_eq!(ctx(vec![0.0]).total_tracks(), 1800);
    }

    #[test]
    fn least_utilized_picks_minimum() {
        let c = ctx(vec![30.0, 10.0, 20.0]);
        assert_eq!(c.least_utilized_excluding(&[]), Some(NodeId(1)));
    }

    #[test]
    fn least_utilized_respects_exclusions() {
        let c = ctx(vec![30.0, 10.0, 20.0]);
        assert_eq!(c.least_utilized_excluding(&[NodeId(1)]), Some(NodeId(2)));
        assert_eq!(
            c.least_utilized_excluding(&[NodeId(0), NodeId(1), NodeId(2)]),
            None
        );
    }

    #[test]
    fn least_utilized_breaks_ties_deterministically() {
        let c = ctx(vec![10.0, 10.0, 10.0]);
        assert_eq!(c.least_utilized_excluding(&[]), Some(NodeId(0)));
        assert_eq!(c.least_utilized_excluding(&[NodeId(0)]), Some(NodeId(1)));
    }

    #[test]
    fn least_utilized_skips_dead_nodes() {
        let mut c = ctx(vec![30.0, 10.0, 20.0]);
        c.alive[1] = false;
        assert_eq!(c.least_utilized_excluding(&[]), Some(NodeId(2)));
        c.alive = vec![false; 3];
        assert_eq!(c.least_utilized_excluding(&[]), None);
    }

    #[test]
    fn null_controller_does_nothing() {
        let mut nc = NullController;
        assert!(nc.on_period_boundary(&[], &ctx(vec![0.0])).is_empty());
        assert_eq!(nc.name(), "none");
    }
}
