//! Background load generators.
//!
//! The paper's Eq. (3) regression takes the CPU utilization `u` of the
//! hosting processor as an input; during profiling the authors measured
//! subtask latencies "for a set of external and internal load situations".
//! These generators create those internal load situations: they feed a node
//! synthetic jobs that hold its utilization near a target, so that (a)
//! profiling can sweep `u` and (b) evaluation runs have non-trivial ambient
//! load for the allocator to react to.

use crate::ids::{LoadGenId, NodeId};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// A background-load arrival produced by a generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadArrival {
    /// CPU demand of the arriving job.
    pub demand: SimDuration,
    /// When the generator next wants to be polled.
    pub next_at: SimTime,
}

/// A source of background CPU jobs on one node.
pub trait LoadGenerator: Send {
    /// The node this generator loads.
    fn node(&self) -> NodeId;

    /// First poll time after simulation start.
    fn first_at(&self, rng: &mut SimRng) -> SimTime;

    /// Produces the job arriving at `now` and schedules the next poll.
    ///
    /// Contract: the returned `next_at` must be strictly greater than
    /// `now` — a degenerate (zero) interval would re-poll the generator
    /// at the same instant forever and spin the event loop. The engine
    /// asserts this on every poll.
    fn arrive(&mut self, now: SimTime, rng: &mut SimRng) -> LoadArrival;

    /// Long-run utilization this generator tries to impose, in `[0, 1]`.
    fn target_utilization(&self) -> f64;

    /// Checks the generator's configuration before it is attached, in the
    /// spirit of [`crate::net::BusConfig::validate`]: constructors catch
    /// bad literals, but configs built from arithmetic or deserialized
    /// values can smuggle in NaN/degenerate parameters that would stall
    /// or spin the simulation. The default validates the target
    /// utilization; implementations with interval parameters extend it.
    ///
    /// # Errors
    /// Returns a human-readable description of the first violation.
    fn validate(&self) -> Result<(), String> {
        let u = self.target_utilization();
        if !u.is_finite() || !(0.0..1.0).contains(&u) {
            return Err(format!(
                "target utilization must be finite and in [0, 1), got {u}"
            ));
        }
        Ok(())
    }
}

/// Deterministic duty-cycle load: every `interval`, a job of demand
/// `utilization × interval` arrives. With a round-robin scheduler this
/// produces smooth, predictable contention — the configuration used when
/// profiling at a controlled utilization.
pub struct PeriodicLoad {
    id: LoadGenId,
    node: NodeId,
    interval: SimDuration,
    utilization: f64,
    /// Randomize the first arrival within one interval so that generators
    /// on different nodes do not phase-lock.
    random_phase: bool,
}

impl PeriodicLoad {
    /// Creates a duty-cycle generator.
    ///
    /// # Panics
    /// Panics unless `0 ≤ utilization < 1` and `interval > 0`.
    pub fn new(id: LoadGenId, node: NodeId, interval: SimDuration, utilization: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&utilization),
            "background utilization must be in [0, 1), got {utilization}"
        );
        assert!(!interval.is_zero(), "interval must be positive");
        PeriodicLoad {
            id,
            node,
            interval,
            utilization,
            random_phase: true,
        }
    }

    /// Disables the random initial phase (useful in unit tests).
    pub fn with_fixed_phase(mut self) -> Self {
        self.random_phase = false;
        self
    }

    /// This generator's id.
    pub fn id(&self) -> LoadGenId {
        self.id
    }
}

impl LoadGenerator for PeriodicLoad {
    fn node(&self) -> NodeId {
        self.node
    }

    fn first_at(&self, rng: &mut SimRng) -> SimTime {
        if self.random_phase {
            SimTime::ZERO + self.interval.mul_f64(rng.uniform())
        } else {
            SimTime::ZERO
        }
    }

    fn arrive(&mut self, now: SimTime, _rng: &mut SimRng) -> LoadArrival {
        LoadArrival {
            demand: self.interval.mul_f64(self.utilization),
            next_at: now + self.interval,
        }
    }

    fn target_utilization(&self) -> f64 {
        self.utilization
    }

    fn validate(&self) -> Result<(), String> {
        if !self.utilization.is_finite() || !(0.0..1.0).contains(&self.utilization) {
            return Err(format!(
                "periodic load utilization must be finite and in [0, 1), got {}",
                self.utilization
            ));
        }
        if self.interval.is_zero() {
            return Err("periodic load interval must be positive".into());
        }
        Ok(())
    }
}

/// Poisson load: exponential inter-arrivals with exponential demands. This
/// is the "asynchronous" ambient load for evaluation runs — event arrivals
/// with nondeterministic distributions (paper §1).
pub struct PoissonLoad {
    id: LoadGenId,
    node: NodeId,
    mean_interarrival: SimDuration,
    mean_demand: SimDuration,
}

impl PoissonLoad {
    /// Creates a Poisson generator with the given means. The imposed
    /// utilization is `mean_demand / mean_interarrival`, which must be < 1.
    pub fn new(
        id: LoadGenId,
        node: NodeId,
        mean_interarrival: SimDuration,
        mean_demand: SimDuration,
    ) -> Self {
        assert!(!mean_interarrival.is_zero(), "mean inter-arrival must be positive");
        let rho = mean_demand.as_secs_f64() / mean_interarrival.as_secs_f64();
        assert!(rho < 1.0, "Poisson load would saturate the CPU (rho = {rho:.3})");
        PoissonLoad {
            id,
            node,
            mean_interarrival,
            mean_demand,
        }
    }

    /// Convenience: a Poisson generator targeting `utilization` with the
    /// given mean job demand.
    pub fn with_utilization(
        id: LoadGenId,
        node: NodeId,
        utilization: f64,
        mean_demand: SimDuration,
    ) -> Self {
        assert!((0.0..1.0).contains(&utilization) && utilization > 0.0);
        let mean_ia = mean_demand.mul_f64(1.0 / utilization);
        Self::new(id, node, mean_ia, mean_demand)
    }

    /// This generator's id.
    pub fn id(&self) -> LoadGenId {
        self.id
    }
}

impl LoadGenerator for PoissonLoad {
    fn node(&self) -> NodeId {
        self.node
    }

    fn first_at(&self, rng: &mut SimRng) -> SimTime {
        SimTime::ZERO
            + SimDuration::from_secs_f64(rng.exponential(self.mean_interarrival.as_secs_f64()))
    }

    fn arrive(&mut self, now: SimTime, rng: &mut SimRng) -> LoadArrival {
        let demand =
            SimDuration::from_secs_f64(rng.exponential(self.mean_demand.as_secs_f64()).max(1e-6));
        let gap =
            SimDuration::from_secs_f64(rng.exponential(self.mean_interarrival.as_secs_f64()).max(1e-6));
        LoadArrival {
            demand,
            next_at: now + gap,
        }
    }

    fn target_utilization(&self) -> f64 {
        self.mean_demand.as_secs_f64() / self.mean_interarrival.as_secs_f64()
    }

    fn validate(&self) -> Result<(), String> {
        if self.mean_interarrival.is_zero() {
            return Err("Poisson mean inter-arrival must be positive".into());
        }
        if self.mean_demand.is_zero() {
            return Err("Poisson mean demand must be positive".into());
        }
        let rho = self.target_utilization();
        if !rho.is_finite() || rho >= 1.0 {
            return Err(format!(
                "Poisson load would saturate the CPU (rho = {rho:.3})"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::from_seed_stream(7, 0)
    }

    #[test]
    fn periodic_load_demand_matches_target() {
        let mut g = PeriodicLoad::new(
            LoadGenId(0),
            NodeId(1),
            SimDuration::from_millis(10),
            0.35,
        )
        .with_fixed_phase();
        let mut r = rng();
        assert_eq!(g.first_at(&mut r), SimTime::ZERO);
        let a = g.arrive(SimTime::ZERO, &mut r);
        assert_eq!(a.demand, SimDuration::from_millis_f64(3.5));
        assert_eq!(a.next_at, SimTime::from_millis(10));
        assert!((g.target_utilization() - 0.35).abs() < 1e-12);
    }

    #[test]
    fn periodic_load_random_phase_is_within_one_interval() {
        let g = PeriodicLoad::new(LoadGenId(0), NodeId(0), SimDuration::from_millis(10), 0.5);
        let mut r = rng();
        for _ in 0..100 {
            let t = g.first_at(&mut r);
            assert!(t <= SimTime::from_millis(10));
        }
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1)")]
    fn periodic_load_rejects_full_utilization() {
        let _ = PeriodicLoad::new(LoadGenId(0), NodeId(0), SimDuration::from_millis(10), 1.0);
    }

    #[test]
    fn poisson_load_long_run_utilization() {
        let mut g = PoissonLoad::with_utilization(
            LoadGenId(0),
            NodeId(0),
            0.4,
            SimDuration::from_millis(2),
        );
        let mut r = rng();
        let mut t = g.first_at(&mut r);
        let mut busy = SimDuration::ZERO;
        let horizon = SimTime::from_secs(200);
        while t < horizon {
            let a = g.arrive(t, &mut r);
            busy += a.demand;
            t = a.next_at;
        }
        let rho = busy.as_secs_f64() / horizon.as_secs_f64();
        assert!((rho - 0.4).abs() < 0.03, "long-run utilization {rho}");
    }

    #[test]
    #[should_panic(expected = "saturate")]
    fn poisson_load_rejects_saturation() {
        let _ = PoissonLoad::new(
            LoadGenId(0),
            NodeId(0),
            SimDuration::from_millis(1),
            SimDuration::from_millis(2),
        );
    }

    #[test]
    fn validate_accepts_constructor_built_generators() {
        let p = PeriodicLoad::new(LoadGenId(0), NodeId(0), SimDuration::from_millis(10), 0.5);
        assert!(p.validate().is_ok());
        let q = PoissonLoad::with_utilization(
            LoadGenId(1),
            NodeId(1),
            0.4,
            SimDuration::from_millis(2),
        );
        assert!(q.validate().is_ok());
    }

    #[test]
    fn validate_rejects_degenerate_configs() {
        // Field-level corruption the constructors cannot see (e.g. a
        // deserialized or arithmetically-derived config).
        let mut p = PeriodicLoad::new(LoadGenId(0), NodeId(0), SimDuration::from_millis(10), 0.5);
        p.utilization = f64::NAN;
        assert!(p.validate().unwrap_err().contains("finite"));
        p.utilization = 0.5;
        p.interval = SimDuration::ZERO;
        assert!(p.validate().unwrap_err().contains("interval"));

        let mut q = PoissonLoad::new(
            LoadGenId(0),
            NodeId(0),
            SimDuration::from_millis(5),
            SimDuration::from_millis(2),
        );
        q.mean_interarrival = SimDuration::ZERO;
        assert!(q.validate().unwrap_err().contains("inter-arrival"));
        q.mean_interarrival = SimDuration::from_millis(5);
        q.mean_demand = SimDuration::from_millis(5);
        assert!(q.validate().unwrap_err().contains("saturate"));
        q.mean_demand = SimDuration::ZERO;
        assert!(q.validate().unwrap_err().contains("demand"));
    }

    #[test]
    fn poisson_demands_are_never_zero() {
        let mut g = PoissonLoad::with_utilization(
            LoadGenId(0),
            NodeId(0),
            0.2,
            SimDuration::from_millis(1),
        );
        let mut r = rng();
        let mut t = SimTime::ZERO;
        for _ in 0..1000 {
            let a = g.arrive(t, &mut r);
            assert!(!a.demand.is_zero());
            assert!(a.next_at > t);
            t = a.next_at;
        }
    }
}
