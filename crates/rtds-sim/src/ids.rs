//! Strongly-typed identifiers.
//!
//! Every entity in the simulated system gets its own id newtype so that a
//! node index can never be confused with a task index at a call site. All
//! ids are small dense integers, suitable for direct `Vec` indexing.

use core::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        #[derive(serde::Serialize, serde::Deserialize)]
        pub struct $name(pub u32);

        impl $name {
            /// Zero-based dense index for `Vec` indexing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a dense index.
            #[inline]
            pub fn from_index(i: usize) -> Self {
                $name(u32::try_from(i).expect("id index overflow"))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// A processor node (the paper's `p_i`).
    NodeId, "p"
);
id_type!(
    /// A periodic task (the paper's `T_i`).
    TaskId, "T"
);
id_type!(
    /// A background load generator attached to a node.
    LoadGenId, "bg"
);
id_type!(
    /// A job queued on some node's CPU.
    JobId, "j"
);
id_type!(
    /// A message in flight on the network.
    MsgId, "m"
);

/// Index of a subtask within its task's pipeline (the paper's `st^i_j`,
/// 0-based here; the paper counts from 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct SubtaskIdx(pub u32);

impl SubtaskIdx {
    /// Zero-based dense index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds from a dense index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        SubtaskIdx(u32::try_from(i).expect("subtask index overflow"))
    }

    /// One-based position as the paper writes it (`st_1` is the first).
    #[inline]
    pub const fn paper_number(self) -> u32 {
        self.0 + 1
    }
}

impl fmt::Display for SubtaskIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "st{}", self.paper_number())
    }
}

/// A (task, subtask) pair — the globally unique name of one pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct StageId {
    /// Owning periodic task.
    pub task: TaskId,
    /// Position in the task's pipeline.
    pub subtask: SubtaskIdx,
}

impl StageId {
    /// Convenience constructor.
    pub fn new(task: TaskId, subtask: SubtaskIdx) -> Self {
        StageId { task, subtask }
    }
}

impl fmt::Display for StageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.task, self.subtask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_through_indices() {
        let n = NodeId::from_index(5);
        assert_eq!(n.index(), 5);
        assert_eq!(n, NodeId(5));
        let s = SubtaskIdx::from_index(2);
        assert_eq!(s.index(), 2);
        assert_eq!(s.paper_number(), 3);
    }

    #[test]
    fn display_forms_match_paper_notation() {
        assert_eq!(NodeId(0).to_string(), "p0");
        assert_eq!(TaskId(1).to_string(), "T1");
        assert_eq!(SubtaskIdx(2).to_string(), "st3");
        assert_eq!(
            StageId::new(TaskId(0), SubtaskIdx(4)).to_string(),
            "T0.st5"
        );
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(StageId::new(TaskId(0), SubtaskIdx(0)));
        set.insert(StageId::new(TaskId(0), SubtaskIdx(1)));
        set.insert(StageId::new(TaskId(0), SubtaskIdx(0)));
        assert_eq!(set.len(), 2);
        assert!(NodeId(1) < NodeId(2));
    }

    #[test]
    #[should_panic(expected = "id index overflow")]
    fn from_index_rejects_overflow() {
        let _ = NodeId::from_index(usize::try_from(u64::from(u32::MAX) + 1).unwrap());
    }
}
