//! Per-node clocks with drift and periodic synchronization.
//!
//! The paper assumes "the clocks of the processors are synchronized using
//! an algorithm such as \[Mills95\]" (§3, item 12) — i.e. NTP-style sync
//! keeps offsets bounded but not zero, which is part of what makes the
//! system *asynchronous*. This module models each node's local clock as
//! `local(t) = t + offset(t)` where the offset drifts linearly between
//! sync rounds and is clamped to within a residual error at each round.
//!
//! The resource manager consumes observations "on a global time scale"
//! (paper Fig. 1); the cluster timestamps observations with node-local
//! clocks and the monitor tolerates the bounded skew. Tests verify the
//! bound holds, which is the property the algorithms rely on.

use crate::ids::NodeId;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Configuration of the clock-skew model.
#[derive(Debug, Clone, Copy)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct ClockConfig {
    /// Maximum absolute drift rate in parts-per-million. Each node draws a
    /// fixed rate uniformly in `[-max, +max]`.
    pub max_drift_ppm: f64,
    /// Interval between synchronization rounds.
    pub sync_interval: SimDuration,
    /// Residual offset bound after a sync round, microseconds. Mills-style
    /// NTP on a LAN achieves sub-millisecond accuracy.
    pub sync_error_us: f64,
}

impl ClockConfig {
    /// A LAN profile consistent with \[Mills95\]-class synchronization:
    /// ±50 ppm oscillators, 10 s sync rounds, ≤500 µs residual error.
    pub fn lan_default() -> Self {
        ClockConfig {
            max_drift_ppm: 50.0,
            sync_interval: SimDuration::from_secs(10),
            sync_error_us: 500.0,
        }
    }

    /// Perfect clocks: no drift, no residual error. Useful for isolating
    /// algorithmic effects in tests.
    pub fn perfect() -> Self {
        ClockConfig {
            max_drift_ppm: 0.0,
            sync_interval: SimDuration::from_secs(10),
            sync_error_us: 0.0,
        }
    }

    /// Worst-case offset any clock can reach between syncs: the residual
    /// error plus drift accumulated over one interval.
    pub fn max_offset_us(&self) -> f64 {
        self.sync_error_us + self.max_drift_ppm * 1e-6 * self.sync_interval.as_micros() as f64
    }
}

/// One node's clock state.
#[derive(Debug, Clone, Copy)]
struct NodeClock {
    /// Offset from global time at `anchored_at`, in microseconds (signed).
    offset_us: f64,
    /// Fixed drift rate, ppm (signed).
    drift_ppm: f64,
    /// Global time the offset was last updated.
    anchored_at: SimTime,
}

impl NodeClock {
    fn offset_at(&self, now: SimTime) -> f64 {
        let dt_us = now.saturating_since(self.anchored_at).as_micros() as f64;
        self.offset_us + self.drift_ppm * 1e-6 * dt_us
    }
}

/// Clock ensemble for all nodes in the cluster.
pub struct ClockModel {
    config: ClockConfig,
    clocks: Vec<NodeClock>,
}

impl ClockModel {
    /// Creates clocks for `n` nodes, drawing initial offsets within the
    /// sync error and drift rates within the configured bound.
    pub fn new(n: usize, config: ClockConfig, rng: &mut SimRng) -> Self {
        let clocks = (0..n)
            .map(|_| NodeClock {
                offset_us: rng.uniform_range(-config.sync_error_us, config.sync_error_us),
                drift_ppm: rng.uniform_range(-config.max_drift_ppm, config.max_drift_ppm),
                anchored_at: SimTime::ZERO,
            })
            .collect();
        ClockModel { config, clocks }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ClockConfig {
        &self.config
    }

    /// Number of modeled clocks.
    pub fn len(&self) -> usize {
        self.clocks.len()
    }

    /// True if no clocks are modeled.
    pub fn is_empty(&self) -> bool {
        self.clocks.is_empty()
    }

    /// The node's local reading of global instant `now`, as a signed
    /// microsecond value (may be slightly behind zero early in a run).
    pub fn local_reading_us(&self, node: NodeId, now: SimTime) -> f64 {
        now.as_micros() as f64 + self.clocks[node.index()].offset_at(now)
    }

    /// Current offset of a node's clock from global time, microseconds.
    pub fn offset_us(&self, node: NodeId, now: SimTime) -> f64 {
        self.clocks[node.index()].offset_at(now)
    }

    /// Runs one synchronization round at `now`: every clock's offset is
    /// re-anchored to a fresh residual error within the configured bound.
    pub fn sync_round(&mut self, now: SimTime, rng: &mut SimRng) {
        let e = self.config.sync_error_us;
        for c in &mut self.clocks {
            c.offset_us = if e > 0.0 { rng.uniform_range(-e, e) } else { 0.0 };
            c.anchored_at = now;
        }
    }

    /// Largest pairwise clock disagreement at `now`, in microseconds.
    pub fn max_pairwise_skew_us(&self, now: SimTime) -> f64 {
        let offsets: Vec<f64> = self.clocks.iter().map(|c| c.offset_at(now)).collect();
        let min = offsets.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = offsets.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        if offsets.is_empty() {
            0.0
        } else {
            max - min
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::from_seed_stream(99, 4)
    }

    #[test]
    fn perfect_clocks_read_global_time() {
        let mut r = rng();
        let m = ClockModel::new(4, ClockConfig::perfect(), &mut r);
        let t = SimTime::from_secs(123);
        for i in 0..4 {
            assert_eq!(m.local_reading_us(NodeId(i), t), t.as_micros() as f64);
        }
        assert_eq!(m.max_pairwise_skew_us(t), 0.0);
    }

    #[test]
    fn drift_accumulates_between_syncs() {
        let mut r = rng();
        let cfg = ClockConfig {
            max_drift_ppm: 50.0,
            sync_interval: SimDuration::from_secs(10),
            sync_error_us: 0.0,
        };
        let mut m = ClockModel::new(2, cfg, &mut r);
        m.sync_round(SimTime::ZERO, &mut r); // zero offsets (error bound 0)
        let t = SimTime::from_secs(10);
        // After 10 s at <=50 ppm, offsets are bounded by 500 us and at
        // least one should be visibly nonzero for a random drift draw.
        for i in 0..2 {
            assert!(m.offset_us(NodeId(i), t).abs() <= 500.0 + 1e-9);
        }
        assert!(m.max_pairwise_skew_us(t) > 0.0);
    }

    #[test]
    fn sync_round_clamps_offsets() {
        let mut r = rng();
        let cfg = ClockConfig::lan_default();
        let mut m = ClockModel::new(6, cfg, &mut r);
        // Let offsets grow for a long time, then sync.
        let late = SimTime::from_secs(1000);
        m.sync_round(late, &mut r);
        for i in 0..6 {
            assert!(
                m.offset_us(NodeId(i), late).abs() <= cfg.sync_error_us,
                "offset after sync exceeds residual bound"
            );
        }
    }

    #[test]
    fn offset_never_exceeds_model_bound_with_regular_sync() {
        let mut r = rng();
        let cfg = ClockConfig::lan_default();
        let mut m = ClockModel::new(6, cfg, &mut r);
        let bound = cfg.max_offset_us();
        let mut now = SimTime::ZERO;
        for _ in 0..50 {
            // Check just before each sync (worst case).
            let check = now + cfg.sync_interval;
            for i in 0..6 {
                assert!(
                    m.offset_us(NodeId(i), check).abs() <= bound + 1e-6,
                    "offset beyond bound {bound}"
                );
            }
            now = check;
            m.sync_round(now, &mut r);
        }
    }

    #[test]
    fn lan_default_bound_is_sub_millisecond_scale() {
        let b = ClockConfig::lan_default().max_offset_us();
        // 500 us residual + 50 ppm * 10 s = 1000 us total.
        assert!((b - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn local_reading_moves_forward() {
        let mut r = rng();
        let m = ClockModel::new(3, ClockConfig::lan_default(), &mut r);
        for i in 0..3 {
            let a = m.local_reading_us(NodeId(i), SimTime::from_secs(1));
            let b = m.local_reading_us(NodeId(i), SimTime::from_secs(2));
            assert!(b > a, "clocks always advance (drift ≪ 1)");
        }
    }
}
