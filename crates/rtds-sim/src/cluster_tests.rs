use super::*;
use crate::load::PeriodicLoad;
use crate::net::JamWindow;
use crate::pipeline::{PolynomialCost, StageSpec};

fn tiny_task(stage_costs: &[(f64, bool, u32)]) -> TaskSpec {
    TaskSpec {
        id: TaskId(0),
        name: "test".into(),
        period: SimDuration::from_secs(1),
        deadline: SimDuration::from_millis(990),
        track_bytes: 80,
        stages: stage_costs
            .iter()
            .map(|&(lin, replicable, home)| StageSpec {
                name: format!("s{home}"),
                cost: PolynomialCost::linear(lin, 1.0),
                replicable,
                home: NodeId(home),
                output_bytes_per_track: 80.0,
            })
            .collect(),
    }
}

fn config(horizon_s: u64) -> ClusterConfig {
    let mut c = ClusterConfig::paper_baseline(42, SimDuration::from_secs(horizon_s));
    c.clock = ClockConfig::perfect();
    c
}

#[test]
fn empty_cluster_runs_to_horizon() {
    let out = Cluster::new(config(5)).run();
    assert_eq!(out.metrics.horizon, SimDuration::from_secs(5));
    assert!(out.metrics.periods.is_empty());
    assert_eq!(out.controller, "none");
    assert!(out.metrics.cpu_lifetime_util.iter().all(|&u| u == 0.0));
}

#[test]
fn single_stage_task_completes_every_period() {
    let mut cl = Cluster::new(config(10));
    cl.add_task(tiny_task(&[(1.0, false, 0)]), Box::new(|_| 500));
    let out = cl.run();
    // 10 s horizon, 1 s period, releases at 0..=10.
    assert_eq!(out.metrics.periods.len(), 11);
    let decided = out.metrics.periods.iter().filter(|p| p.missed.is_some()).count();
    assert!(decided >= 10);
    for p in out.metrics.periods.iter().take(10) {
        assert_eq!(p.missed, Some(false), "unloaded stage must meet 990ms");
        let l = p.end_to_end.unwrap();
        // 500 tracks = 5 hundreds * 1 ms + 1 ms const = 6 ms of demand.
        assert!(l >= SimDuration::from_millis(6), "latency {l}");
        assert!(l < SimDuration::from_millis(20), "latency {l}");
    }
}

#[test]
fn pipeline_stages_run_in_series_across_nodes() {
    let mut cl = Cluster::new(config(6));
    cl.add_task(
        tiny_task(&[(1.0, false, 0), (1.0, false, 1), (1.0, false, 2)]),
        Box::new(|_| 1000),
    );
    let out = cl.run();
    let p = &out.metrics.periods[0];
    // 3 stages x (10 + 1) ms demand plus 2 network hops
    // (80 KB ≈ 6.7 ms wire time each).
    let l = p.end_to_end.unwrap();
    assert!(l >= SimDuration::from_millis(33 + 12), "latency {l}");
    assert!(l < SimDuration::from_millis(120), "latency {l}");
    assert_eq!(p.missed, Some(false));
    // Network was actually used.
    assert!(out.metrics.net_lifetime_util > 0.0);
    assert!(out.metrics.bytes_offered >= 2 * 80_000);
}

#[test]
fn deterministic_across_identical_runs() {
    let run = || {
        let mut cl = Cluster::new(config(8));
        cl.add_task(
            tiny_task(&[(2.0, false, 0), (3.0, false, 1)]),
            Box::new(|i| 300 + 40 * i),
        );
        cl.add_load(Box::new(PeriodicLoad::new(
            crate::ids::LoadGenId(0),
            NodeId(0),
            SimDuration::from_millis(10),
            0.3,
        )));
        cl.run()
    };
    let a = run();
    let b = run();
    let lat = |o: &RunOutcome| -> Vec<Option<SimDuration>> {
        o.metrics.periods.iter().map(|p| p.end_to_end).collect()
    };
    assert_eq!(lat(&a), lat(&b));
    assert_eq!(a.metrics.cpu_lifetime_util, b.metrics.cpu_lifetime_util);
}

#[test]
fn background_load_inflates_latency() {
    let latency_with_bg = |util: f64| {
        let mut cl = Cluster::new(config(20));
        cl.add_task(tiny_task(&[(10.0, false, 0)]), Box::new(|_| 1000));
        if util > 0.0 {
            cl.add_load(Box::new(PeriodicLoad::new(
                crate::ids::LoadGenId(0),
                NodeId(0),
                SimDuration::from_millis(10),
                util,
            )));
        }
        let out = cl.run();
        let ls: Vec<f64> = out
            .metrics
            .periods
            .iter()
            .filter_map(|p| p.end_to_end.map(|d| d.as_millis_f64()))
            .collect();
        ls.iter().sum::<f64>() / ls.len() as f64
    };
    let l0 = latency_with_bg(0.0);
    let l50 = latency_with_bg(0.5);
    let l80 = latency_with_bg(0.8);
    // Demand is ~101 ms; under RR with duty-cycle load the job is
    // stretched roughly by 1/(1-u).
    assert!(l50 > 1.6 * l0, "50% load should stretch: {l0} -> {l50}");
    assert!(l80 > 3.0 * l0, "80% load should stretch: {l0} -> {l80}");
    assert!(l50 < 3.0 * l0, "stretch should stay near 2x: {l0} -> {l50}");
}

#[test]
fn replicated_stage_fans_out_and_joins() {
    struct Replicator;
    impl Controller for Replicator {
        fn on_period_boundary(
            &mut self,
            _c: &[PeriodObservation],
            ctx: &ControlContext,
        ) -> Vec<ControlAction> {
            // Pin stage 1 to three replicas from the start.
            if ctx.placements[0][1].len() == 1 {
                vec![ControlAction::SetPlacement {
                    task: TaskId(0),
                    subtask: SubtaskIdx(1),
                    nodes: vec![NodeId(1), NodeId(2), NodeId(3)],
                }]
            } else {
                Vec::new()
            }
        }
        fn name(&self) -> &'static str {
            "replicator"
        }
    }
    let mut spec = tiny_task(&[(1.0, false, 0), (0.0, true, 1), (1.0, false, 4)]);
    // Quadratic cost on the replicable middle stage.
    spec.stages[1].cost = PolynomialCost::new(1.0, 0.0, 1.0);
    let mk = |replicated: bool| {
        let mut cl = Cluster::new(config(10));
        cl.add_task(spec.clone(), Box::new(|_| 3000));
        if replicated {
            cl.set_controller(Box::new(Replicator));
        }
        cl.run()
    };
    let base = mk(false);
    let repl = mk(true);
    let avg = |o: &RunOutcome| {
        let ls: Vec<f64> = o
            .metrics
            .periods
            .iter()
            .skip(2) // let the placement change take effect
            .filter_map(|p| p.end_to_end.map(|d| d.as_millis_f64()))
            .collect();
        ls.iter().sum::<f64>() / ls.len() as f64
    };
    // Quadratic stage: 30 hundreds -> 900 ms solo; in 3 replicas of 10
    // hundreds each -> 100 ms. End-to-end must drop dramatically.
    assert!(
        avg(&repl) < 0.5 * avg(&base),
        "replication must cut latency: {} vs {}",
        avg(&repl),
        avg(&base)
    );
    assert_eq!(repl.metrics.placement_changes, 1);
    // Replica counts recorded in the period records.
    assert!(repl
        .metrics
        .periods
        .iter()
        .skip(2)
        .all(|p| p.replicas_per_stage[1] == 3));
}

#[test]
fn overload_sheds_and_counts_missed() {
    // One stage with demand far beyond the period on one node.
    let mut spec = tiny_task(&[(0.0, false, 0)]);
    spec.stages[0].cost = PolynomialCost::new(0.0, 0.0, 5_000.0); // 5 s
    let mut cl = Cluster::new(config(30));
    cl.add_task(spec, Box::new(|_| 100));
    let out = cl.run();
    let shed = out.metrics.periods.iter().filter(|p| p.shed).count();
    assert!(shed > 10, "sustained overload must shed ({shed})");
    let missed = out
        .metrics
        .periods
        .iter()
        .filter(|p| p.missed == Some(true))
        .count();
    assert!(missed >= shed);
}

#[test]
fn invalid_controller_actions_are_rejected_not_fatal() {
    struct Bad;
    impl Controller for Bad {
        fn on_period_boundary(
            &mut self,
            _c: &[PeriodObservation],
            _ctx: &ControlContext,
        ) -> Vec<ControlAction> {
            vec![
                ControlAction::SetPlacement {
                    task: TaskId(0),
                    subtask: SubtaskIdx(0),
                    nodes: vec![NodeId(0), NodeId(1)], // not replicable
                },
                ControlAction::SetPlacement {
                    task: TaskId(9),
                    subtask: SubtaskIdx(0),
                    nodes: vec![NodeId(0)], // no such task
                },
            ]
        }
        fn name(&self) -> &'static str {
            "bad"
        }
    }
    let mut cl = Cluster::new(config(3));
    cl.add_task(tiny_task(&[(1.0, false, 0)]), Box::new(|_| 100));
    cl.set_controller(Box::new(Bad));
    let out = cl.run();
    assert!(out.metrics.rejected_actions >= 2);
    assert_eq!(out.metrics.placement_changes, 0);
    assert!(out.metrics.periods.iter().take(3).all(|p| p.missed == Some(false)));
}

#[test]
fn cpu_utilization_metric_reflects_offered_load() {
    let mut cl = Cluster::new(config(30));
    cl.add_load(Box::new(PeriodicLoad::new(
        crate::ids::LoadGenId(0),
        NodeId(2),
        SimDuration::from_millis(10),
        0.42,
    )));
    let out = cl.run();
    let u = out.metrics.cpu_lifetime_util[2];
    assert!((u - 0.42).abs() < 0.02, "node 2 utilization {u}");
    assert!(out.metrics.cpu_lifetime_util[0] < 0.01);
    // Sampled (EWMA inputs) utilization rows were collected.
    assert!(out.metrics.cpu_samples.len() > 100);
}

#[test]
#[should_panic(expected = "task id must equal insertion index")]
fn add_task_enforces_dense_ids() {
    let mut cl = Cluster::new(config(1));
    let mut s = tiny_task(&[(1.0, false, 0)]);
    s.id = TaskId(3);
    cl.add_task(s, Box::new(|_| 0));
}

#[test]
#[should_panic(expected = "invalid task spec")]
fn add_task_validates_spec() {
    let mut cl = Cluster::new(config(1));
    cl.add_task(tiny_task(&[(1.0, false, 17)]), Box::new(|_| 0));
}

#[test]
fn replicated_predecessor_fans_into_narrow_successor() {
    // Stage 1 has 3 replicas, stage 2 has 1: three messages must all
    // arrive before stage 2 runs, and stage 2 must see the full stream.
    struct Pin;
    impl Controller for Pin {
        fn on_period_boundary(
            &mut self,
            _c: &[PeriodObservation],
            ctx: &ControlContext,
        ) -> Vec<ControlAction> {
            if ctx.placements[0][1].len() == 1 {
                vec![ControlAction::SetPlacement {
                    task: TaskId(0),
                    subtask: SubtaskIdx(1),
                    nodes: vec![NodeId(1), NodeId(2), NodeId(3)],
                }]
            } else {
                Vec::new()
            }
        }
        fn name(&self) -> &'static str {
            "pin"
        }
    }
    let mut spec = tiny_task(&[(1.0, false, 0), (0.0, true, 1), (1.0, false, 4)]);
    spec.stages[1].cost = PolynomialCost::linear(1.0, 1.0);
    let mut cl = Cluster::new(config(8));
    cl.add_task(spec, Box::new(|_| 3000));
    cl.set_controller(Box::new(Pin));
    let out = cl.run();
    // Every settled period after the placement change completes and
    // the final stage processed the whole 3000-track stream: its
    // demand is 30 + 1 = 31 ms, so end-to-end comfortably exceeds it.
    for p in out.metrics.periods.iter().skip(2).take(5) {
        assert_eq!(p.missed, Some(false));
        assert_eq!(p.replicas_per_stage, vec![1, 3, 1]);
        assert!(p.end_to_end.unwrap() >= SimDuration::from_millis(31 + 10 + 31));
    }
    // 3 replicas -> messages fan 3-into-1 across two hops: at least
    // 6 network messages per period after the change.
    assert!(out.metrics.messages_offered >= 6 * 6);
}

#[test]
fn static_priority_shields_stage_jobs_from_background_load() {
    // Stage jobs are admitted at priority 0, background at 1: under the
    // static-priority policy the application barely notices heavy
    // ambient load, unlike under round-robin.
    let latency_under = |kind: SchedulerKind| {
        let mut cfg = config(20);
        cfg.scheduler = kind;
        let mut cl = Cluster::new(cfg);
        cl.add_task(tiny_task(&[(10.0, false, 0)]), Box::new(|_| 1_000));
        cl.add_load(Box::new(PeriodicLoad::new(
            crate::ids::LoadGenId(0),
            NodeId(0),
            SimDuration::from_millis(10),
            0.7,
        )));
        let out = cl.run();
        let ls: Vec<f64> = out
            .metrics
            .periods
            .iter()
            .filter_map(|p| p.end_to_end.map(|d| d.as_millis_f64()))
            .collect();
        ls.iter().sum::<f64>() / ls.len() as f64
    };
    let rr = latency_under(SchedulerKind::paper_baseline());
    let prio = latency_under(SchedulerKind::StaticPriority {
        quantum_us: Some(1_000),
    });
    // Demand is ~101 ms; RR at 70% load stretches toward ~3x, while
    // priority keeps it near intrinsic (only the in-flight background
    // job can block, non-preemptively).
    assert!(prio < 1.3 * 101.0, "priority-shielded latency {prio}");
    assert!(rr > 2.0 * prio, "rr {rr} vs priority {prio}");
}

#[test]
fn contention_backoff_inflates_network_time() {
    // Enable a large CSMA backoff and fan one stage into three
    // replicas: the extra contention intervals inflate end-to-end
    // latency relative to the collision-free bus.
    let run = |backoff_us: u64| {
        let mut cfg = config(10);
        cfg.bus.max_backoff_us = backoff_us;
        let mut cl = Cluster::new(cfg);
        let mut spec = tiny_task(&[(1.0, false, 0), (0.0, true, 1), (1.0, false, 4)]);
        spec.stages[1].cost = PolynomialCost::linear(0.5, 1.0);
        cl.add_task(spec, Box::new(|_| 6_000));
        struct Pin;
        impl Controller for Pin {
            fn on_period_boundary(
                &mut self,
                _c: &[PeriodObservation],
                ctx: &ControlContext,
            ) -> Vec<ControlAction> {
                if ctx.placements[0][1].len() == 1 {
                    vec![ControlAction::SetPlacement {
                        task: TaskId(0),
                        subtask: SubtaskIdx(1),
                        nodes: vec![NodeId(1), NodeId(2), NodeId(3)],
                    }]
                } else {
                    Vec::new()
                }
            }
            fn name(&self) -> &'static str {
                "pin"
            }
        }
        cl.set_controller(Box::new(Pin));
        let out = cl.run();
        out.metrics
            .periods
            .iter()
            .skip(2)
            .filter_map(|p| p.end_to_end.map(|d| d.as_millis_f64()))
            .sum::<f64>()
    };
    let clean = run(0);
    let contended = run(20_000); // up to 20 ms per contention win
    assert!(
        contended > clean + 10.0,
        "backoff must cost latency: {clean} vs {contended}"
    );
}

#[test]
fn release_jitter_delays_arrivals_without_drift() {
    let mut cfg = config(30);
    cfg.release_jitter_us = 200_000; // up to 200 ms late
    let mut cl = Cluster::new(cfg);
    cl.add_task(tiny_task(&[(1.0, false, 0)]), Box::new(|_| 100));
    let out = cl.run();
    let mut jittered = 0;
    for p in &out.metrics.periods {
        let nominal = SimTime::from_secs(p.instance);
        let offset = p.released.saturating_since(nominal);
        assert!(
            offset <= SimDuration::from_millis(200),
            "jitter bounded: instance {} off by {offset}",
            p.instance
        );
        assert!(p.released >= nominal, "never early");
        if !offset.is_zero() {
            jittered += 1;
        }
    }
    assert!(jittered > 20, "most releases are jittered: {jittered}");
    // Jitter never accumulates: the 25th release is within one jitter
    // bound of its grid point (checked above for every instance).
}

#[test]
fn zero_jitter_keeps_exact_periodicity() {
    let mut cl = Cluster::new(config(10));
    cl.add_task(tiny_task(&[(1.0, false, 0)]), Box::new(|_| 100));
    let out = cl.run();
    for p in &out.metrics.periods {
        assert_eq!(p.released, SimTime::from_secs(p.instance));
    }
}

#[test]
fn zero_workload_periods_still_complete() {
    let mut cl = Cluster::new(config(5));
    cl.add_task(tiny_task(&[(1.0, false, 0), (1.0, false, 1)]), Box::new(|_| 0));
    let out = cl.run();
    for p in out.metrics.periods.iter().take(4) {
        assert_eq!(p.missed, Some(false));
        assert_eq!(p.tracks, 0);
    }
}

/// Regression: crashing a node while it holds the bus used to leave a
/// stale `TxComplete` event behind that hit
/// `expect("tx_complete with idle bus")`. The crash must be tolerated
/// and the aborted message accounted as lost.
#[test]
fn crash_mid_transmission_is_tolerated_and_counted() {
    // Stage 0 on p0 computes 31 ms then ships 240 KB (~20 ms wire
    // time) to p1; crashing p0 at 40 ms lands mid-transmission.
    let mut cl = Cluster::new(config(3));
    cl.enable_trace(4096);
    cl.add_task(tiny_task(&[(1.0, false, 0), (1.0, false, 1)]), Box::new(|_| 3000));
    cl.crash_node_at(NodeId(0), SimTime::from_millis(40), None);
    let out = cl.run();
    assert!(out.metrics.messages_lost >= 1, "aborted in-flight message counts as lost");
    let trace = out.trace.expect("trace enabled");
    assert!(
        trace.filtered(|e| matches!(e, TraceEvent::MessageLost { .. })).count() >= 1,
        "loss is traced:\n{}",
        trace.render()
    );
    // With the only first-stage processor gone, later periods miss.
    assert!(out.metrics.periods.iter().any(|p| p.missed == Some(true)));
}

#[test]
fn crash_restart_rejoins_and_periods_recover() {
    // p1 hosts the second stage. Crash it at 2.5 s, restart at 4.5 s:
    // periods released in the outage window miss (their messages land
    // on a dead node and count as lost), later ones complete again.
    let mut cl = Cluster::new(config(10));
    cl.enable_trace(4096);
    cl.add_task(tiny_task(&[(1.0, false, 0), (1.0, false, 1)]), Box::new(|_| 500));
    cl.crash_node_at(
        NodeId(1),
        SimTime::from_millis(2_500),
        Some(SimDuration::from_secs(2)),
    );
    let out = cl.run();
    assert_eq!(out.metrics.node_restarts, 1);
    assert!(out.metrics.messages_lost >= 1, "dead-destination deliveries count as lost");
    let trace = out.trace.expect("trace enabled");
    assert_eq!(
        trace
            .filtered(|e| matches!(e, TraceEvent::NodeRestarted { node } if *node == NodeId(1)))
            .count(),
        1
    );
    for p in &out.metrics.periods {
        let s = p.released.as_secs_f64();
        if s < 2.0 {
            assert_eq!(p.missed, Some(false), "pre-crash instance {}", p.instance);
        } else if (3.0..4.0).contains(&s) {
            assert_eq!(p.missed, Some(true), "outage instance {}", p.instance);
        } else if (5.0..9.0).contains(&s) {
            assert_eq!(p.missed, Some(false), "post-restart instance {}", p.instance);
        }
    }
}

#[test]
fn lossy_bus_with_retransmit_recovers() {
    let mut cfg = config(20);
    cfg.bus.drop_prob = 0.3;
    cfg.bus.retx_timeout_us = 20_000;
    cfg.bus.retx_max_retries = 6;
    let mut cl = Cluster::new(cfg);
    cl.add_task(tiny_task(&[(1.0, false, 0), (1.0, false, 1)]), Box::new(|_| 1000));
    let out = cl.run();
    assert!(out.metrics.messages_dropped > 0, "a 30% lossy bus drops something");
    assert!(out.metrics.retransmits > 0, "drops trigger retransmissions");
    let completed = out
        .metrics
        .periods
        .iter()
        .filter(|p| p.missed == Some(false))
        .count();
    assert!(
        completed >= 18,
        "retransmission recovers almost every period: {completed}/21"
    );
}

#[test]
fn without_retransmit_losses_become_missed_deadlines() {
    let mut cfg = config(20);
    cfg.bus.drop_prob = 0.3; // no retx_timeout_us: losses are final
    let mut cl = Cluster::new(cfg);
    cl.add_task(tiny_task(&[(1.0, false, 0), (1.0, false, 1)]), Box::new(|_| 1000));
    let out = cl.run();
    assert!(out.metrics.messages_dropped > 0);
    assert_eq!(out.metrics.retransmits, 0);
    let missed = out
        .metrics
        .periods
        .iter()
        .filter(|p| p.missed == Some(true))
        .count();
    assert!(missed >= 2, "unrecovered losses must miss deadlines: {missed}");
}

#[test]
fn duplicates_are_suppressed_and_change_nothing() {
    let run = |dup_prob: f64| {
        let mut cfg = config(10);
        cfg.bus.dup_prob = dup_prob;
        let mut cl = Cluster::new(cfg);
        cl.add_task(tiny_task(&[(1.0, false, 0), (1.0, false, 1)]), Box::new(|_| 1000));
        cl.run()
    };
    let clean = run(0.0);
    let dupped = run(1.0);
    assert_eq!(clean.metrics.messages_duplicated, 0);
    assert!(dupped.metrics.messages_duplicated > 0);
    // Receiver-side suppression makes duplication behaviorally inert:
    // every latency matches the clean run exactly.
    let lat = |o: &RunOutcome| -> Vec<Option<SimDuration>> {
        o.metrics.periods.iter().map(|p| p.end_to_end).collect()
    };
    assert_eq!(lat(&clean), lat(&dupped));
}

#[test]
fn jam_window_inflates_end_to_end_latency() {
    let run = |jam: Option<JamWindow>| {
        let mut cfg = config(10);
        cfg.bus.jam = jam;
        let mut cl = Cluster::new(cfg);
        cl.add_task(tiny_task(&[(1.0, false, 0), (1.0, false, 1)]), Box::new(|_| 3000));
        let out = cl.run();
        let ls: Vec<f64> = out
            .metrics
            .periods
            .iter()
            .filter_map(|p| p.end_to_end.map(|d| d.as_millis_f64()))
            .collect();
        ls.iter().sum::<f64>() / ls.len() as f64
    };
    let clean = run(None);
    let jammed = run(Some(JamWindow {
        start_us: 0,
        duration_us: 10_000_000,
        bandwidth_factor: 0.25,
        repeat_us: 0,
    }));
    // 240 KB at quarter bandwidth adds ~60 ms per period.
    assert!(
        jammed > clean + 40.0,
        "jamming must stretch the wire: {clean} vs {jammed}"
    );
}

#[test]
fn failure_realism_runs_are_deterministic() {
    let run = || {
        let mut cfg = config(15);
        cfg.bus.drop_prob = 0.2;
        cfg.bus.dup_prob = 0.1;
        cfg.bus.retx_timeout_us = 20_000;
        let mut cl = Cluster::new(cfg);
        cl.add_task(tiny_task(&[(1.0, false, 0), (1.0, false, 1)]), Box::new(|_| 1000));
        cl.crash_node_at(
            NodeId(1),
            SimTime::from_millis(4_200),
            Some(SimDuration::from_secs(3)),
        );
        cl.run()
    };
    let a = run();
    let b = run();
    let lat = |o: &RunOutcome| -> Vec<Option<SimDuration>> {
        o.metrics.periods.iter().map(|p| p.end_to_end).collect()
    };
    assert_eq!(lat(&a), lat(&b));
    assert_eq!(a.metrics.messages_dropped, b.metrics.messages_dropped);
    assert_eq!(a.metrics.messages_duplicated, b.metrics.messages_duplicated);
    assert_eq!(a.metrics.retransmits, b.metrics.retransmits);
    assert_eq!(a.metrics.messages_lost, b.metrics.messages_lost);
}

/// Mean of node `n`'s sampled utilization over sample rows
/// `[from, to)` (rows land every 100 ms).
fn mean_util(out: &RunOutcome, node: usize, from: usize, to: usize) -> f64 {
    let rows = &out.metrics.cpu_samples[from..to];
    rows.iter().map(|r| r[node]).sum::<f64>() / rows.len() as f64
}

#[test]
fn background_load_resumes_after_crash_restart() {
    // Regression for the dead-generator bug: `on_bg_poll` used to
    // return without rescheduling when its node was down, so ambient
    // load never came back after a crash–restart and post-restart
    // slack was silently flattered. Utilization before the crash must
    // match utilization after recovery, in both engine modes.
    for fast in [true, false] {
        let mut cfg = config(30);
        cfg.bg_fast_path = fast;
        let mut cl = Cluster::new(cfg);
        cl.add_load(Box::new(PeriodicLoad::new(
            crate::ids::LoadGenId(0),
            NodeId(2),
            SimDuration::from_millis(10),
            0.42,
        )));
        cl.crash_node_at(
            NodeId(2),
            SimTime::from_secs(10),
            Some(SimDuration::from_secs(2)),
        );
        let out = cl.run();
        assert_eq!(out.metrics.node_restarts, 1);
        // Rows land at 0.1 s, 0.2 s, …: row i covers (i*0.1, (i+1)*0.1].
        let before = mean_util(&out, 2, 20, 95);
        let outage = mean_util(&out, 2, 105, 115);
        let after = mean_util(&out, 2, 145, 295);
        assert!((before - 0.42).abs() < 0.02, "fast={fast} pre-crash {before}");
        assert!(outage < 0.01, "fast={fast} outage utilization {outage}");
        assert!(
            (after - before).abs() < 0.02,
            "fast={fast} ambient load must recover: before {before}, after {after}"
        );
    }
}

#[test]
fn restart_before_pending_poll_does_not_double_arm() {
    // A crash shorter than one inter-arrival gap: the generator's
    // next poll is still pending at restart (never went dormant), so
    // the restart must not arm a second poll stream. A doubled stream
    // would double the imposed utilization.
    for fast in [true, false] {
        let mut cfg = config(30);
        cfg.bg_fast_path = fast;
        let mut cl = Cluster::new(cfg);
        cl.add_load(Box::new(PeriodicLoad::new(
            crate::ids::LoadGenId(0),
            NodeId(1),
            SimDuration::from_secs(2),
            0.3,
        )));
        cl.crash_node_at(
            NodeId(1),
            SimTime::from_millis(10_100),
            Some(SimDuration::from_millis(200)),
        );
        let out = cl.run();
        let u = out.metrics.cpu_lifetime_util[1];
        assert!(
            (u - 0.3).abs() < 0.05,
            "fast={fast} lifetime utilization {u} (doubled stream would approach 0.6)"
        );
    }
}

#[test]
fn bg_fast_path_is_byte_identical_to_slow_path() {
    // The whole contract of the fast path: identical RNG draws at
    // identical program points, identical `(time, seq)` allocation,
    // identical metrics — through stage/background contention, a
    // crash–restart, and a lossy duplicating bus.
    let run = |fast: bool| {
        let mut cfg = config(12);
        cfg.bg_fast_path = fast;
        cfg.bus.drop_prob = 0.15;
        cfg.bus.dup_prob = 0.05;
        cfg.bus.retx_timeout_us = 20_000;
        let mut cl = Cluster::new(cfg);
        cl.enable_trace(4096);
        cl.add_task(
            tiny_task(&[(2.0, false, 0), (3.0, false, 1)]),
            Box::new(|i| 300 + 40 * i),
        );
        for n in [0u32, 1, 3] {
            cl.add_load(Box::new(crate::load::PoissonLoad::with_utilization(
                crate::ids::LoadGenId(n),
                NodeId(n),
                0.35,
                SimDuration::from_millis(2),
            )));
        }
        cl.crash_node_at(
            NodeId(1),
            SimTime::from_millis(4_200),
            Some(SimDuration::from_secs(2)),
        );
        cl.run()
    };
    let on = run(true);
    let off = run(false);
    assert_eq!(
        format!("{:?}", on.metrics),
        format!("{:?}", off.metrics),
        "fast path must not change a single metric byte"
    );
    let render = |o: &RunOutcome| o.trace.as_ref().expect("trace enabled").render();
    assert_eq!(render(&on), render(&off), "fast path must not change the trace");
}

#[test]
#[should_panic(expected = "invalid load generator config")]
fn add_load_validates_generator_configs() {
    // A custom generator whose config slipped past any constructor
    // checks (e.g. deserialized or arithmetically built): the engine
    // rejects it at attach time via `LoadGenerator::validate`.
    struct BadGen;
    impl crate::load::LoadGenerator for BadGen {
        fn node(&self) -> NodeId {
            NodeId(0)
        }
        fn first_at(&self, _rng: &mut crate::rng::SimRng) -> SimTime {
            SimTime::ZERO
        }
        fn arrive(&mut self, now: SimTime, _rng: &mut crate::rng::SimRng) -> crate::load::LoadArrival {
            crate::load::LoadArrival { demand: SimDuration::ZERO, next_at: now }
        }
        fn target_utilization(&self) -> f64 {
            f64::NAN
        }
    }
    let mut cl = Cluster::new(config(1));
    cl.add_load(Box::new(BadGen));
}

#[test]
fn legacy_fail_node_at_still_kills_permanently() {
    let mut cl = Cluster::new(config(10));
    cl.add_task(tiny_task(&[(1.0, false, 0), (1.0, false, 1)]), Box::new(|_| 500));
    cl.fail_node_at(NodeId(1), SimTime::from_millis(2_500));
    let out = cl.run();
    assert_eq!(out.metrics.node_restarts, 0);
    // Nothing completes after the failure.
    for p in &out.metrics.periods {
        if p.released.as_secs_f64() >= 3.0 {
            assert_ne!(p.missed, Some(false), "instance {}", p.instance);
        }
    }
}

#[test]
fn fail_and_crash_are_identical_when_the_node_is_idle() {
    // Satellite regression for the unified node-death path: a permanent
    // failure and a crash-without-restart go through the same
    // `FaultEngine::kill_node` teardown, so when the bus is idle at the
    // kill instant (nothing to tear down, no backoff draw) every metric
    // of the two runs must be byte-identical.
    let run = |crash: bool| {
        let mut cl = Cluster::new(config(10));
        cl.add_task(tiny_task(&[(1.0, false, 0), (1.0, false, 1)]), Box::new(|_| 500));
        // Instance 0 completes by ~15 ms; at 500 ms the pipeline and the
        // wire are both quiet.
        let at = SimTime::from_millis(500);
        if crash {
            cl.crash_node_at(NodeId(1), at, None);
        } else {
            cl.fail_node_at(NodeId(1), at);
        }
        cl.run()
    };
    let fail = run(false);
    let crash = run(true);
    assert_eq!(
        format!("{:?}", fail.metrics),
        format!("{:?}", crash.metrics),
        "idle-instant fail and crash-without-restart must not diverge"
    );
}

#[test]
fn fail_and_crash_diverge_only_in_bus_teardown() {
    // The one documented divergence: a crash aborts the dead node's
    // in-flight bus traffic, a plain failure leaves the wire alone. Kill
    // the stage-0 node while its output message is mid-transmission:
    // under `fail_node_at` the frame completes and stage 1 (on the
    // surviving node) finishes the instance; under `crash_node_at` the
    // frame is torn down and the instance is lost with it.
    let run = |crash: bool| {
        let mut cl = Cluster::new(config(10));
        cl.add_task(tiny_task(&[(1.0, false, 0), (1.0, false, 1)]), Box::new(|_| 2_000));
        // Stage 0 exec: 1.0 * 20 + 1 = 21 ms; its 160 KB output then
        // occupies the 100 Mbps wire for ~12.8 ms. 25 ms is mid-frame.
        let at = SimTime::from_millis(25);
        if crash {
            cl.crash_node_at(NodeId(0), at, None);
        } else {
            cl.fail_node_at(NodeId(0), at);
        }
        cl.run()
    };
    let fail = run(false);
    let crash = run(true);
    // Plain failure: the in-flight frame survives the sender's death.
    assert_eq!(fail.metrics.messages_lost, 0);
    assert_eq!(fail.metrics.periods[0].missed, Some(false), "frame outlives the failed sender");
    // Crash: the frame dies with the node, and the instance with it.
    assert!(crash.metrics.messages_lost >= 1, "crash tears down in-flight traffic");
    assert_eq!(crash.metrics.periods[0].missed, Some(true));
    // Everything else is the shared kill path: both are permanent, and
    // every post-kill period fails identically in both runs.
    assert_eq!(fail.metrics.node_restarts, 0);
    assert_eq!(crash.metrics.node_restarts, 0);
    for (f, c) in fail.metrics.periods.iter().zip(&crash.metrics.periods).skip(1) {
        assert_eq!(f.missed, c.missed, "instance {}", f.instance);
        assert_eq!(f.shed, c.shed, "instance {}", f.instance);
    }
}
