//! Generalized event sinks.
//!
//! [`crate::trace::TraceSink`] predates this module and is one concrete
//! consumer of simulator events; the observability layer needs the same
//! shape for other event types (decision-audit records from the resource
//! manager, most prominently) and other backends (streaming JSONL to a
//! file instead of bounded in-memory buffering). [`EventSink`] is that
//! generalization: anything that accepts `(time, event)` pairs. The
//! simulator and managers write through the trait; what happens to the
//! events — bounded buffering, streaming serialization, or discarding —
//! is the sink's business.
//!
//! Sinks are strictly opt-in and must never influence the simulation:
//! implementations record and step aside. Nothing in this module draws
//! randomness or feeds back into event ordering, so a run with sinks
//! attached is byte-identical to the same run without them.

use crate::time::SimTime;

/// A consumer of timestamped events.
///
/// The contract mirrors [`crate::trace::TraceSink::record`]: `record` is
/// called in nondecreasing time order, once per event, and must not fail
/// loudly — a sink that hits an internal error (e.g. a full buffer or a
/// broken writer) degrades by dropping events and exposing a counter,
/// never by panicking into the simulation.
pub trait EventSink<E> {
    /// Accepts one event observed at simulated time `now`.
    fn record(&mut self, now: SimTime, event: E);

    /// Flushes any buffered output. Default: nothing to flush.
    fn flush(&mut self) {}
}

/// Every sink behind `Arc<Mutex<_>>` is itself a sink; this is how one
/// sink is shared between the embedder (which drains it after the run)
/// and a producer that is consumed by the simulation (a boxed
/// controller, typically). Lock poisoning is recovered, not propagated:
/// a panic elsewhere must not cascade through telemetry.
impl<E, S: EventSink<E>> EventSink<E> for std::sync::Arc<std::sync::Mutex<S>> {
    fn record(&mut self, now: SimTime, event: E) {
        self.lock().unwrap_or_else(|e| e.into_inner()).record(now, event);
    }

    fn flush(&mut self) {
        self.lock().unwrap_or_else(|e| e.into_inner()).flush();
    }
}

/// A bounded in-memory sink for any event type — the generic sibling of
/// [`crate::trace::TraceSink`]. Events past `capacity` are counted and
/// dropped so a runaway producer cannot OOM the run.
#[derive(Debug, Default)]
pub struct BoundedSink<E> {
    events: Vec<(SimTime, E)>,
    capacity: usize,
    dropped: u64,
}

impl<E> BoundedSink<E> {
    /// Creates a sink holding at most `capacity` events.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity > 0, "zero-capacity event sink");
        BoundedSink {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// All recorded events in arrival order.
    pub fn events(&self) -> &[(SimTime, E)] {
        &self.events
    }

    /// Consumes the sink, yielding its events.
    pub fn into_events(self) -> Vec<(SimTime, E)> {
        self.events
    }

    /// Number of events dropped after the sink filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl<E> EventSink<E> for BoundedSink<E> {
    fn record(&mut self, now: SimTime, event: E) {
        if self.events.len() < self.capacity {
            self.events.push((now, event));
        } else {
            self.dropped += 1;
        }
    }
}

/// A streaming JSONL sink: each event becomes one line of the form
/// `{"at_us":<time>,"event":<serialized event>}` written straight to the
/// underlying writer. Memory use is constant regardless of run length —
/// the right backend for long soaks where a bounded buffer would wrap.
///
/// Write errors do not panic (telemetry must never take down a run):
/// the first error is retained, subsequent events are counted as dropped,
/// and the embedder can inspect [`JsonlSink::error`] after the run.
#[derive(Debug)]
pub struct JsonlSink<W: std::io::Write> {
    out: W,
    lines: u64,
    dropped: u64,
    error: Option<String>,
}

impl<W: std::io::Write> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> Self {
        JsonlSink {
            out,
            lines: 0,
            dropped: 0,
            error: None,
        }
    }

    /// Lines successfully written.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Events dropped after the first error.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The first serialization or write error, if any occurred.
    pub fn error(&self) -> Option<&str> {
        self.error.as_deref()
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(mut self) -> W {
        let _ = self.out.flush();
        self.out
    }
}

impl<W: std::io::Write, E: serde::Serialize> EventSink<E> for JsonlSink<W> {
    fn record(&mut self, now: SimTime, event: E) {
        if self.error.is_some() {
            self.dropped += 1;
            return;
        }
        let line = match serde_json::to_string(&event) {
            Ok(js) => js,
            Err(e) => {
                self.error = Some(format!("serialize: {e:?}"));
                self.dropped += 1;
                return;
            }
        };
        if let Err(e) = writeln!(self.out, "{{\"at_us\":{},\"event\":{}}}", now.as_micros(), line)
        {
            self.error = Some(format!("write: {e}"));
            self.dropped += 1;
        } else {
            self.lines += 1;
        }
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn bounded_sink_stores_in_order_and_drops_overflow() {
        let mut s: BoundedSink<u32> = BoundedSink::bounded(2);
        for i in 0..5u32 {
            s.record(SimTime::from_millis(u64::from(i)), i);
        }
        assert_eq!(s.events().len(), 2);
        assert_eq!(s.events()[0].1, 0);
        assert_eq!(s.events()[1].1, 1);
        assert_eq!(s.dropped(), 3);
        assert_eq!(s.into_events().len(), 2);
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn bounded_sink_rejects_zero_capacity() {
        let _: BoundedSink<u32> = BoundedSink::bounded(0);
    }

    #[test]
    fn jsonl_sink_writes_one_envelope_per_event() {
        let mut s = JsonlSink::new(Vec::new());
        s.record(SimTime::from_micros(1_500), 7u32);
        s.record(SimTime::from_micros(2_500), 9u32);
        EventSink::<u32>::flush(&mut s);
        assert_eq!(s.lines(), 2);
        assert_eq!(s.error(), None);
        let text = String::from_utf8(s.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "{\"at_us\":1500,\"event\":7}");
        assert_eq!(lines[1], "{\"at_us\":2500,\"event\":9}");
    }

    #[test]
    fn jsonl_sink_survives_a_broken_writer() {
        /// A writer that always fails.
        struct Broken;
        impl std::io::Write for Broken {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk on fire"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut s = JsonlSink::new(Broken);
        s.record(SimTime::ZERO, 1u32);
        s.record(SimTime::ZERO, 2u32);
        assert_eq!(s.lines(), 0);
        assert_eq!(s.dropped(), 2);
        assert!(s.error().unwrap().contains("disk on fire"));
    }

    #[test]
    fn shared_sink_records_through_the_mutex() {
        let shared = Arc::new(Mutex::new(BoundedSink::bounded(4)));
        let mut handle = Arc::clone(&shared);
        handle.record(SimTime::from_millis(3), 42u32);
        EventSink::<u32>::flush(&mut handle);
        assert_eq!(shared.lock().unwrap().events(), &[(SimTime::from_millis(3), 42)]);
    }
}
