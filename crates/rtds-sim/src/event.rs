//! Generic discrete-event queue.
//!
//! A deterministic priority queue of `(time, event)` pairs. Ties in time are
//! broken by insertion order (a monotone sequence number), so two runs with
//! the same inputs pop events in exactly the same order — a prerequisite for
//! reproducible experiments.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A handle to a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle(u64);

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

// BinaryHeap is a max-heap; invert the ordering to get earliest-first,
// breaking ties by lowest sequence number (FIFO among simultaneous events).
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic event queue with cancellation support.
///
/// Cancellation is lazy: cancelled handles are remembered and the entry is
/// dropped when it reaches the head of the heap, keeping `cancel` O(1).
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    /// Sequence numbers still live in the heap (scheduled, not yet popped
    /// or cancelled). Lets `cancel` distinguish a pending handle from a
    /// stale one in O(1).
    pending: std::collections::HashSet<u64>,
    cancelled: std::collections::HashSet<u64>,
    /// Time of the most recently popped event; pops are checked to be
    /// monotone so a mis-scheduled past event is caught immediately.
    last_popped: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            pending: std::collections::HashSet::new(),
            cancelled: std::collections::HashSet::new(),
            last_popped: SimTime::ZERO,
        }
    }

    /// Creates an empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            seq: 0,
            pending: std::collections::HashSet::new(),
            cancelled: std::collections::HashSet::new(),
            last_popped: SimTime::ZERO,
        }
    }

    /// Schedules `event` at absolute time `at` and returns a cancellable
    /// handle.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the last popped event time: that would
    /// mean the caller is trying to schedule into the simulated past.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventHandle {
        assert!(
            at >= self.last_popped,
            "scheduling into the past: at={at}, now={}",
            self.last_popped
        );
        let seq = self.seq;
        self.seq += 1;
        self.pending.insert(seq);
        self.heap.push(Entry { time: at, seq, event });
        EventHandle(seq)
    }

    /// Cancels a previously scheduled event. Returns true if the handle was
    /// still pending (i.e. not already popped or cancelled).
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        if !self.pending.remove(&handle.0) {
            return false;
        }
        self.cancelled.insert(handle.0);
        true
    }

    /// Pops the earliest pending event, skipping cancelled entries.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.pending.remove(&entry.seq);
            debug_assert!(entry.time >= self.last_popped);
            self.last_popped = entry.time;
            return Some((entry.time, entry.event));
        }
        None
    }

    /// Time of the earliest pending (non-cancelled) event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drain cancelled entries off the top so the peek is accurate.
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
            } else {
                return Some(entry.time);
            }
        }
        None
    }

    /// Number of live (pending, non-cancelled) entries.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The time of the most recently popped event (the "current time" of a
    /// simulation driven by this queue).
    pub fn now(&self) -> SimTime {
        self.last_popped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), "c");
        q.schedule(SimTime::from_micros(10), "a");
        q.schedule(SimTime::from_micros(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_pending_event() {
        let mut q = EventQueue::new();
        let h = q.schedule(SimTime::from_micros(10), "dropme");
        q.schedule(SimTime::from_micros(20), "keep");
        assert!(q.cancel(h));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_micros(20), "keep")));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_is_idempotent_and_rejects_unknown() {
        let mut q = EventQueue::new();
        let h = q.schedule(SimTime::from_micros(10), ());
        assert!(q.cancel(h));
        assert!(!q.cancel(h), "second cancel must report false");
        assert!(!q.cancel(EventHandle(999)), "never-issued handle");
    }

    #[test]
    fn cancel_after_pop_reports_false() {
        let mut q = EventQueue::new();
        let h = q.schedule(SimTime::from_micros(10), ());
        q.pop();
        // The handle is stale; cancelling must not corrupt the queue.
        q.cancel(h);
        q.schedule(SimTime::from_micros(20), ());
        assert_eq!(q.len(), 1);
        assert!(q.pop().is_some());
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let h = q.schedule(SimTime::from_micros(5), "x");
        q.schedule(SimTime::from_micros(9), "y");
        q.cancel(h);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(9)));
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(7));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), ());
        q.pop();
        q.schedule(SimTime::from_millis(5), ());
    }

    #[test]
    fn zero_delay_self_reschedule_is_allowed() {
        // An event may schedule another event at the *same* instant.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1), 0u32);
        let (t, _) = q.pop().unwrap();
        q.schedule(t, 1u32);
        assert_eq!(q.pop(), Some((t, 1u32)));
    }

    #[test]
    fn model_based_against_reference_implementation() {
        // Drive the queue and a naive reference (sorted Vec) with the same
        // deterministic operation stream; they must agree on every pop.
        let mut q = EventQueue::new();
        let mut reference: Vec<(SimTime, u64, u64)> = Vec::new(); // (t, seq, val)
        let mut handles: Vec<(EventHandle, u64)> = Vec::new();
        let mut seq = 0u64;
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut rnd = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let mut now = 0u64;
        for _ in 0..2_000 {
            match rnd() % 4 {
                0 | 1 => {
                    // schedule at now + jitter
                    let t = now + rnd() % 10_000;
                    let v = rnd();
                    let h = q.schedule(SimTime::from_micros(t), v);
                    reference.push((SimTime::from_micros(t), seq, v));
                    handles.push((h, seq));
                    seq += 1;
                }
                2 => {
                    // cancel a random still-known handle
                    if !handles.is_empty() {
                        let i = (rnd() as usize) % handles.len();
                        let (h, s) = handles.swap_remove(i);
                        let was_pending = reference.iter().any(|&(_, rs, _)| rs == s);
                        assert_eq!(q.cancel(h), was_pending, "cancel agreement");
                        reference.retain(|&(_, rs, _)| rs != s);
                    }
                }
                _ => {
                    // pop
                    reference.sort_by_key(|&(t, s, _)| (t, s));
                    let expect = if reference.is_empty() {
                        None
                    } else {
                        let (t, _, v) = reference.remove(0);
                        Some((t, v))
                    };
                    let got = q.pop();
                    assert_eq!(got, expect, "pop agreement");
                    if let Some((t, _)) = got {
                        now = t.as_micros();
                    }
                }
            }
        }
        // Drain and compare the tails.
        reference.sort_by_key(|&(t, s, _)| (t, s));
        for (t, _, v) in reference {
            assert_eq!(q.pop(), Some((t, v)));
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        let step = SimDuration::from_micros(10);
        q.schedule(SimTime::ZERO + step, 0u64);
        let mut popped = Vec::new();
        while let Some((t, k)) = q.pop() {
            popped.push(k);
            if k < 50 {
                // schedule two children, one near one far
                q.schedule(t + step, k + 100);
                q.schedule(t + step * 2, k + 1);
            }
            if popped.len() > 1000 {
                break;
            }
        }
        // All we assert is global time-monotonicity, which `pop` itself
        // debug-asserts; plus that the run terminated.
        assert!(popped.len() > 50);
    }
}
