//! Generic discrete-event queue.
//!
//! A deterministic priority queue of `(time, event)` pairs. Ties in time are
//! broken by insertion order (a monotone sequence number), so two runs with
//! the same inputs pop events in exactly the same order — a prerequisite for
//! reproducible experiments.
//!
//! Cancellation is lazy (O(1)): the entry stays in the heap as a tombstone
//! and is dropped when it surfaces. Handle liveness is tracked through a
//! small generation-stamped slot table instead of hash sets, so the
//! schedule/cancel/pop hot path does no hashing and no per-event
//! allocation; when tombstones outnumber live entries the heap is
//! compacted in one pass, bounding both memory and pop-skip work.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A handle to a scheduled event, usable for cancellation.
///
/// Handles are generation-stamped: once the event is popped or cancelled,
/// the handle goes stale and any further `cancel` through it reports
/// `false`, even if the internal slot has been reused since.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle {
    slot: u32,
    gen: u32,
}

/// Operation counters, exposed for the perf layer and benchmarks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Events ever scheduled.
    pub scheduled: u64,
    /// Events delivered by `pop`.
    pub popped: u64,
    /// Successful cancellations.
    pub cancelled: u64,
    /// Tombstone compaction passes performed.
    pub compactions: u64,
    /// Largest heap population observed (live + tombstones).
    pub heap_high_water: usize,
}

struct Entry<E> {
    time: SimTime,
    seq: u64,
    slot: u32,
    event: E,
}

// BinaryHeap is a max-heap; invert the ordering to get earliest-first,
// breaking ties by lowest sequence number (FIFO among simultaneous events).
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Per-slot lifecycle state; `gen` advances each time the slot is reused,
/// invalidating handles from its previous life.
#[derive(Clone, Copy, PartialEq, Eq)]
enum SlotState {
    Vacant,
    Pending,
    Cancelled,
}

#[derive(Clone, Copy)]
struct Slot {
    gen: u32,
    state: SlotState,
}

/// Compaction triggers only on heaps at least this big; tiny heaps are
/// cheaper to skip through than to rebuild.
const COMPACT_MIN_HEAP: usize = 64;

/// Deterministic event queue with cancellation support.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    slots: Vec<Slot>,
    free: Vec<u32>,
    /// Cancelled entries still sitting in the heap.
    tombstones: usize,
    /// Time of the most recently popped event; pops are checked to be
    /// monotone so a mis-scheduled past event is caught immediately.
    last_popped: SimTime,
    stats: QueueStats,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            seq: 0,
            slots: Vec::with_capacity(cap),
            free: Vec::new(),
            tombstones: 0,
            last_popped: SimTime::ZERO,
            stats: QueueStats::default(),
        }
    }

    /// Pre-allocates room for `additional` more scheduled events, so a
    /// burst of `schedule` calls (e.g. seeding a simulation, fanning a
    /// stage out to replicas) does not re-grow the heap midway.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
        let needed = (self.heap.len() + additional).saturating_sub(self.slots.capacity());
        self.slots.reserve(needed);
    }

    fn alloc_slot(&mut self) -> u32 {
        match self.free.pop() {
            Some(s) => {
                self.slots[s as usize].state = SlotState::Pending;
                s
            }
            None => {
                let s = self.slots.len() as u32;
                self.slots.push(Slot {
                    gen: 0,
                    state: SlotState::Pending,
                });
                s
            }
        }
    }

    #[inline]
    fn release_slot(&mut self, slot: u32) {
        let s = &mut self.slots[slot as usize];
        s.state = SlotState::Vacant;
        s.gen = s.gen.wrapping_add(1);
        self.free.push(slot);
    }

    /// Schedules `event` at absolute time `at` and returns a cancellable
    /// handle.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the last popped event time: that would
    /// mean the caller is trying to schedule into the simulated past.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventHandle {
        assert!(
            at >= self.last_popped,
            "scheduling into the past: at={at}, now={}",
            self.last_popped
        );
        let seq = self.seq;
        self.seq += 1;
        let slot = self.alloc_slot();
        self.heap.push(Entry {
            time: at,
            seq,
            slot,
            event,
        });
        self.stats.scheduled += 1;
        if self.heap.len() > self.stats.heap_high_water {
            self.stats.heap_high_water = self.heap.len();
        }
        EventHandle {
            slot,
            gen: self.slots[slot as usize].gen,
        }
    }

    /// Reserves the next sequence number without scheduling anything.
    ///
    /// Together with [`schedule_at_seq`](Self::schedule_at_seq) this
    /// supports *event elision*: a caller that can prove a future event's
    /// handler is a state no-op may skip enqueueing it, but must still
    /// consume its sequence number at the exact point the event would
    /// have been scheduled, so that tie-breaking among same-time events
    /// is bit-identical to the unelided execution.
    pub fn alloc_seq(&mut self) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        seq
    }

    /// Schedules `event` at `at` under a sequence number previously
    /// obtained from [`alloc_seq`](Self::alloc_seq), re-materializing an
    /// elided event in its original tie-break position.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the last popped event time.
    pub fn schedule_at_seq(&mut self, at: SimTime, seq: u64, event: E) -> EventHandle {
        assert!(
            at >= self.last_popped,
            "scheduling into the past: at={at}, now={}",
            self.last_popped
        );
        debug_assert!(seq < self.seq, "seq was not allocated by alloc_seq");
        let slot = self.alloc_slot();
        self.heap.push(Entry {
            time: at,
            seq,
            slot,
            event,
        });
        self.stats.scheduled += 1;
        if self.heap.len() > self.stats.heap_high_water {
            self.stats.heap_high_water = self.heap.len();
        }
        EventHandle {
            slot,
            gen: self.slots[slot as usize].gen,
        }
    }

    /// Advances the queue's notion of "now" to `t` without popping, as if
    /// an event at `t` had just been popped. Callers that fire elided
    /// events (see [`alloc_seq`](Self::alloc_seq)) use this so that
    /// schedule-into-the-past detection stays as strict as in the
    /// unelided execution. Earlier times are ignored.
    pub fn advance_now(&mut self, t: SimTime) {
        if t > self.last_popped {
            self.last_popped = t;
        }
    }

    /// Schedules a batch of `(time, event)` pairs, reserving capacity up
    /// front. Events are sequenced in iteration order, exactly as repeated
    /// `schedule` calls would be; the handles are discarded, so use this
    /// for events that are never cancelled individually.
    pub fn schedule_batch<I>(&mut self, items: I)
    where
        I: IntoIterator<Item = (SimTime, E)>,
    {
        let it = items.into_iter();
        self.reserve(it.size_hint().0);
        for (at, event) in it {
            let _ = self.schedule(at, event);
        }
    }

    /// Cancels a previously scheduled event. Returns true if the handle was
    /// still pending (i.e. not already popped or cancelled).
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        let Some(slot) = self.slots.get_mut(handle.slot as usize) else {
            return false;
        };
        if slot.gen != handle.gen || slot.state != SlotState::Pending {
            return false;
        }
        slot.state = SlotState::Cancelled;
        self.tombstones += 1;
        self.stats.cancelled += 1;
        self.maybe_compact();
        true
    }

    /// Rebuilds the heap without its tombstones once they outnumber the
    /// live entries. One O(n) pass bounds heap memory and the skip work
    /// every subsequent pop would otherwise pay. Ordering is untouched:
    /// relative order is fully determined by each entry's `(time, seq)`
    /// key, which the rebuild preserves.
    fn maybe_compact(&mut self) {
        if self.heap.len() < COMPACT_MIN_HEAP || self.tombstones * 2 <= self.heap.len() {
            return;
        }
        let entries = std::mem::take(&mut self.heap).into_vec();
        let mut live = Vec::with_capacity(entries.len() - self.tombstones);
        for e in entries {
            if self.slots[e.slot as usize].state == SlotState::Cancelled {
                self.release_slot(e.slot);
            } else {
                live.push(e);
            }
        }
        self.tombstones = 0;
        self.heap = BinaryHeap::from(live);
        self.stats.compactions += 1;
    }

    /// Pops the earliest pending event, skipping cancelled entries.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.slots[entry.slot as usize].state == SlotState::Cancelled {
                self.tombstones -= 1;
                self.release_slot(entry.slot);
                continue;
            }
            self.release_slot(entry.slot);
            debug_assert!(entry.time >= self.last_popped);
            self.last_popped = entry.time;
            self.stats.popped += 1;
            return Some((entry.time, entry.event));
        }
        None
    }

    /// Time of the earliest pending (non-cancelled) event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.peek_key().map(|(t, _)| t)
    }

    /// `(time, seq)` key of the earliest pending event, if any. The key
    /// totally orders events: lets callers interleave elided virtual
    /// events (see [`alloc_seq`](Self::alloc_seq)) with real pops.
    pub fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        // Drain cancelled entries off the top so the peek is accurate.
        while let Some(entry) = self.heap.peek() {
            if self.slots[entry.slot as usize].state == SlotState::Cancelled {
                let slot = entry.slot;
                self.heap.pop();
                self.tombstones -= 1;
                self.release_slot(slot);
            } else {
                return Some((entry.time, entry.seq));
            }
        }
        None
    }

    /// A monotone counter that advances on every operation that can
    /// change the earliest pending key — schedule, pop, or cancel. A
    /// caller that interleaves many non-queue events (virtual lanes) can
    /// cache [`peek_key`](Self::peek_key)'s result and re-peek only when
    /// the version has moved, skipping a heap access per iteration.
    #[inline]
    pub fn version(&self) -> u64 {
        // The stats counters already tick exactly once per mutating op,
        // so their sum is a free version number.
        self.stats.scheduled + self.stats.popped + self.stats.cancelled
    }

    /// Number of live (pending, non-cancelled) entries.
    pub fn len(&self) -> usize {
        self.heap.len() - self.tombstones
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The time of the most recently popped event (the "current time" of a
    /// simulation driven by this queue).
    pub fn now(&self) -> SimTime {
        self.last_popped
    }

    /// Operation counters since construction.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), "c");
        q.schedule(SimTime::from_micros(10), "a");
        q.schedule(SimTime::from_micros(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_pending_event() {
        let mut q = EventQueue::new();
        let h = q.schedule(SimTime::from_micros(10), "dropme");
        q.schedule(SimTime::from_micros(20), "keep");
        assert!(q.cancel(h));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_micros(20), "keep")));
        assert!(q.pop().is_none());
    }

    #[test]
    fn elided_events_rematerialize_in_original_tie_break_position() {
        // Three events at the same time: A scheduled, an elided slot E,
        // then B scheduled. Re-materializing E later must land it between
        // A and B, exactly where a real schedule would have put it.
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        q.schedule(t, "A");
        let seq = q.alloc_seq();
        q.schedule(t, "B");
        q.schedule_at_seq(t, seq, "E");
        assert_eq!(q.peek_key().map(|(_, s)| s), Some(0));
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["A", "E", "B"]);
    }

    #[test]
    fn rematerialized_events_are_cancellable() {
        let mut q = EventQueue::new();
        let seq = q.alloc_seq();
        let h = q.schedule_at_seq(SimTime::from_millis(1), seq, 7u32);
        assert!(q.cancel(h));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancel_is_idempotent_and_rejects_unknown() {
        let mut q = EventQueue::new();
        let h = q.schedule(SimTime::from_micros(10), ());
        assert!(q.cancel(h));
        assert!(!q.cancel(h), "second cancel must report false");
        let never_issued = EventHandle { slot: 999, gen: 0 };
        assert!(!q.cancel(never_issued), "never-issued handle");
    }

    #[test]
    fn cancel_after_pop_reports_false() {
        let mut q = EventQueue::new();
        let h = q.schedule(SimTime::from_micros(10), ());
        q.pop();
        // The handle is stale; cancelling must not corrupt the queue.
        assert!(!q.cancel(h));
        q.schedule(SimTime::from_micros(20), ());
        assert_eq!(q.len(), 1);
        assert!(q.pop().is_some());
    }

    #[test]
    fn stale_handle_never_cancels_a_reused_slot() {
        // Pop frees the handle's slot; the next schedule reuses it. The
        // old handle must not be able to cancel the new event (ABA).
        let mut q = EventQueue::new();
        let h1 = q.schedule(SimTime::from_micros(10), "first");
        q.pop();
        let h2 = q.schedule(SimTime::from_micros(20), "second");
        assert_eq!(h1.slot, h2.slot, "slot is reused");
        assert!(!q.cancel(h1), "stale generation must be rejected");
        assert_eq!(q.pop(), Some((SimTime::from_micros(20), "second")));
        // And cancelling with the fresh handle still works.
        let h3 = q.schedule(SimTime::from_micros(30), "third");
        assert!(q.cancel(h3));
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let h = q.schedule(SimTime::from_micros(5), "x");
        q.schedule(SimTime::from_micros(9), "y");
        q.cancel(h);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(9)));
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(7));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), ());
        q.pop();
        q.schedule(SimTime::from_millis(5), ());
    }

    #[test]
    fn zero_delay_self_reschedule_is_allowed() {
        // An event may schedule another event at the *same* instant.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1), 0u32);
        let (t, _) = q.pop().unwrap();
        q.schedule(t, 1u32);
        assert_eq!(q.pop(), Some((t, 1u32)));
    }

    #[test]
    fn batch_schedule_matches_sequential_scheduling() {
        let items = |n: u64| (0..n).map(|i| (SimTime::from_micros(1000 - i % 7), i));
        let mut a = EventQueue::new();
        a.schedule_batch(items(50));
        let mut b = EventQueue::new();
        for (t, e) in items(50) {
            b.schedule(t, e);
        }
        loop {
            let (x, y) = (a.pop(), b.pop());
            assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
    }

    #[test]
    fn compaction_reclaims_majority_tombstones() {
        let mut q = EventQueue::new();
        let handles: Vec<_> = (0..200)
            .map(|i| q.schedule(SimTime::from_micros(i), i))
            .collect();
        // Cancel three quarters; the tombstone majority must trigger a
        // rebuild that shrinks the heap to the live population.
        for h in handles.iter().take(150) {
            assert!(q.cancel(*h));
        }
        let s = q.stats();
        assert!(s.compactions >= 1, "compaction must have run: {s:?}");
        assert_eq!(q.len(), 50);
        let popped: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(popped, (150..200).collect::<Vec<_>>());
    }

    #[test]
    fn compaction_preserves_fifo_tie_break() {
        // All events at the same instant; cancel a majority interleaved.
        // Survivors must still pop in insertion order after the rebuild.
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(3);
        let handles: Vec<_> = (0..300).map(|i| q.schedule(t, i)).collect();
        for (i, h) in handles.iter().enumerate() {
            if i % 4 != 1 {
                assert!(q.cancel(*h));
            }
        }
        assert!(q.stats().compactions >= 1, "{:?}", q.stats());
        let popped: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        let expect: Vec<_> = (0..300).filter(|i| i % 4 == 1).collect();
        assert_eq!(popped, expect, "FIFO tie-break broken by compaction");
    }

    #[test]
    fn small_heaps_skip_compaction() {
        let mut q = EventQueue::new();
        let hs: Vec<_> = (0..10).map(|i| q.schedule(SimTime::from_micros(i), i)).collect();
        for h in hs {
            q.cancel(h);
        }
        assert_eq!(q.stats().compactions, 0, "below the size floor");
        assert!(q.pop().is_none());
    }

    #[test]
    fn stats_account_for_every_operation() {
        let mut q = EventQueue::new();
        let h1 = q.schedule(SimTime::from_micros(1), 1);
        let h2 = q.schedule(SimTime::from_micros(2), 2);
        q.schedule(SimTime::from_micros(3), 3);
        assert!(q.cancel(h2));
        assert!(!q.cancel(h2));
        q.pop();
        assert!(!q.cancel(h1), "already popped");
        let s = q.stats();
        assert_eq!(s.scheduled, 3);
        assert_eq!(s.cancelled, 1);
        assert_eq!(s.popped, 1);
        assert_eq!(s.heap_high_water, 3);
    }

    #[test]
    fn model_based_against_reference_implementation() {
        // Drive the queue and a naive reference (sorted Vec) with the same
        // deterministic operation stream; they must agree on every pop.
        let mut q = EventQueue::new();
        let mut reference: Vec<(SimTime, u64, u64)> = Vec::new(); // (t, seq, val)
        let mut handles: Vec<(EventHandle, u64)> = Vec::new();
        let mut seq = 0u64;
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut rnd = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let mut now = 0u64;
        for _ in 0..2_000 {
            match rnd() % 4 {
                0 | 1 => {
                    // schedule at now + jitter
                    let t = now + rnd() % 10_000;
                    let v = rnd();
                    let h = q.schedule(SimTime::from_micros(t), v);
                    reference.push((SimTime::from_micros(t), seq, v));
                    handles.push((h, seq));
                    seq += 1;
                }
                2 => {
                    // cancel a random still-known handle
                    if !handles.is_empty() {
                        let i = (rnd() as usize) % handles.len();
                        let (h, s) = handles.swap_remove(i);
                        let was_pending = reference.iter().any(|&(_, rs, _)| rs == s);
                        assert_eq!(q.cancel(h), was_pending, "cancel agreement");
                        reference.retain(|&(_, rs, _)| rs != s);
                    }
                }
                _ => {
                    // pop
                    reference.sort_by_key(|&(t, s, _)| (t, s));
                    let expect = if reference.is_empty() {
                        None
                    } else {
                        let (t, _, v) = reference.remove(0);
                        Some((t, v))
                    };
                    let got = q.pop();
                    assert_eq!(got, expect, "pop agreement");
                    if let Some((t, _)) = got {
                        now = t.as_micros();
                    }
                }
            }
        }
        // Drain and compare the tails.
        reference.sort_by_key(|&(t, s, _)| (t, s));
        for (t, _, v) in reference {
            assert_eq!(q.pop(), Some((t, v)));
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        let step = SimDuration::from_micros(10);
        q.schedule(SimTime::ZERO + step, 0u64);
        let mut popped = Vec::new();
        while let Some((t, k)) = q.pop() {
            popped.push(k);
            if k < 50 {
                // schedule two children, one near one far
                q.schedule(t + step, k + 100);
                q.schedule(t + step * 2, k + 1);
            }
            if popped.len() > 1000 {
                break;
            }
        }
        // All we assert is global time-monotonicity, which `pop` itself
        // debug-asserts; plus that the run terminated.
        assert!(popped.len() > 50);
    }
}
