//! Source-hygiene guard: no file in `crates/rtds-sim/src` may exceed
//! 1,200 lines.
//!
//! The `Cluster` god object this crate was refactored out of grew one
//! handler at a time; each addition was locally reasonable and the sum
//! was a 2,000-line module nothing could be tested apart from. This
//! guard is the pressure valve: when a module approaches the limit,
//! split it along an engine seam (see `docs/ARCHITECTURE.md`) instead
//! of raising the number.

use std::path::{Path, PathBuf};

const MAX_LINES: usize = 1_200;

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("read src dir") {
        let path = entry.expect("read dir entry").path();
        if path.is_dir() {
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn no_source_file_exceeds_the_line_budget() {
    let src = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let mut files = Vec::new();
    rust_sources(&src, &mut files);
    assert!(
        files.iter().any(|p| p.ends_with("cluster.rs")),
        "walker failed to find cluster.rs — wrong directory?"
    );
    let oversized: Vec<String> = files
        .iter()
        .filter_map(|p| {
            let lines = std::fs::read_to_string(p).expect("read source file").lines().count();
            (lines > MAX_LINES).then(|| format!("{} ({lines} lines)", p.display()))
        })
        .collect();
    assert!(
        oversized.is_empty(),
        "source files over the {MAX_LINES}-line budget — split along an \
         engine seam (docs/ARCHITECTURE.md) rather than raising the limit:\n  {}",
        oversized.join("\n  ")
    );
}
