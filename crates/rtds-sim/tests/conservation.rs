//! Cross-module conservation and sanity properties of whole simulation
//! runs: quantities that must balance no matter the configuration.

use rtds_sim::prelude::*;

fn base_config(seed: u64, secs: u64) -> ClusterConfig {
    let mut c = ClusterConfig::paper_baseline(seed, SimDuration::from_secs(secs));
    c.clock = ClockConfig::perfect();
    c
}

fn three_stage_task(replicable_mid: bool) -> TaskSpec {
    TaskSpec {
        id: TaskId(0),
        name: "probe".into(),
        period: SimDuration::from_secs(1),
        deadline: SimDuration::from_millis(990),
        track_bytes: 80,
        stages: vec![
            StageSpec {
                name: "a".into(),
                cost: PolynomialCost::linear(0.5, 1.0),
                replicable: false,
                home: NodeId(0),
                output_bytes_per_track: 80.0,
            },
            StageSpec {
                name: "b".into(),
                cost: PolynomialCost::new(0.002, 0.8, 0.0),
                replicable: replicable_mid,
                home: NodeId(1),
                output_bytes_per_track: 40.0,
            },
            StageSpec {
                name: "c".into(),
                cost: PolynomialCost::linear(0.3, 1.0),
                replicable: false,
                home: NodeId(2),
                output_bytes_per_track: 8.0,
            },
        ],
    }
}

#[test]
fn network_bytes_balance_exactly() {
    // Every completed period sends stage-a output (80 B/track) and
    // stage-b output (40 B/track) over the bus; offered bytes must equal
    // the sum over released periods that reached each hop.
    let tracks = 1_000u64;
    let mut cl = Cluster::new(base_config(1, 10));
    cl.add_task(three_stage_task(false), Box::new(move |_| tracks));
    let out = cl.run();
    let completed = out
        .metrics
        .periods
        .iter()
        .filter(|p| p.end_to_end.is_some())
        .count() as u64;
    // Hops may be in flight at the horizon; offered >= completed * both
    // hops and <= released * both hops.
    let per_period = tracks * 80 + tracks * 40;
    let released = out.metrics.periods.len() as u64;
    assert!(out.metrics.bytes_offered >= completed * per_period);
    assert!(out.metrics.bytes_offered <= released * per_period);
    // Exactly two bus messages per period that got past stage a and b.
    assert!(out.metrics.messages_offered >= 2 * completed);
}

#[test]
fn utilizations_are_fractions() {
    let mut cl = Cluster::new(base_config(2, 15));
    cl.add_task(three_stage_task(false), Box::new(|i| 500 + i * 200));
    cl.add_load(Box::new(PeriodicLoad::new(
        LoadGenId(0),
        NodeId(3),
        SimDuration::from_millis(10),
        0.6,
    )));
    let out = cl.run();
    for (n, &u) in out.metrics.cpu_lifetime_util.iter().enumerate() {
        assert!((0.0..=1.0).contains(&u), "node {n} utilization {u}");
    }
    assert!((0.0..=1.0).contains(&out.metrics.net_lifetime_util));
    for row in &out.metrics.cpu_samples {
        for &u in row {
            assert!((0.0..=1.000001).contains(&u), "sample {u}");
        }
    }
}

#[test]
fn stage_records_cover_every_completed_instance() {
    let mut cl = Cluster::new(base_config(3, 12));
    cl.add_task(three_stage_task(false), Box::new(|_| 800));
    let out = cl.run();
    let completed: Vec<u64> = out
        .metrics
        .periods
        .iter()
        .filter(|p| p.end_to_end.is_some())
        .map(|p| p.instance)
        .collect();
    for &inst in &completed {
        let rows: Vec<_> = out
            .metrics
            .stage_records
            .iter()
            .filter(|r| r.instance == inst)
            .collect();
        assert_eq!(rows.len(), 3, "one record per stage for instance {inst}");
        // Stage latencies sum to no more than end-to-end (messages add).
        let e2e = out
            .metrics
            .periods
            .iter()
            .find(|p| p.instance == inst)
            .unwrap()
            .end_to_end
            .unwrap()
            .as_millis_f64();
        let exec_sum: f64 = rows.iter().map(|r| r.exec_ms).sum();
        assert!(
            exec_sum <= e2e + 1e-6,
            "instance {inst}: exec sum {exec_sum} vs e2e {e2e}"
        );
        for r in &rows {
            assert!(r.exec_ms >= 0.0 && r.msg_ms >= 0.0);
        }
    }
}

#[test]
fn end_to_end_is_at_least_the_critical_path() {
    // The pipeline cannot beat its intrinsic demand plus wire time.
    let tracks = 2_000u64;
    let task = three_stage_task(false);
    let intrinsic: f64 = task
        .stages
        .iter()
        .map(|s| s.cost.demand(tracks).as_millis_f64())
        .sum();
    let mut cl = Cluster::new(base_config(4, 8));
    cl.add_task(task, Box::new(move |_| tracks));
    let out = cl.run();
    for p in out.metrics.periods.iter().filter(|p| p.end_to_end.is_some()) {
        let e2e = p.end_to_end.unwrap().as_millis_f64();
        assert!(
            e2e >= intrinsic,
            "instance {}: {e2e} ms < intrinsic demand {intrinsic} ms",
            p.instance
        );
    }
}

#[test]
fn replica_counts_in_records_match_placement_history() {
    use rtds_sim::control::{ControlAction, ControlContext, Controller, PeriodObservation};
    use rtds_sim::ids::SubtaskIdx;
    struct GrowAt(u64);
    impl Controller for GrowAt {
        fn on_period_boundary(
            &mut self,
            completed: &[PeriodObservation],
            ctx: &ControlContext,
        ) -> Vec<ControlAction> {
            let past = completed.iter().any(|o| o.instance + 1 >= self.0);
            if past && ctx.placements[0][1].len() == 1 {
                vec![ControlAction::SetPlacement {
                    task: TaskId(0),
                    subtask: SubtaskIdx(1),
                    nodes: vec![NodeId(1), NodeId(4)],
                }]
            } else {
                Vec::new()
            }
        }
        fn name(&self) -> &'static str {
            "grow-at"
        }
    }
    let mut cl = Cluster::new(base_config(5, 14));
    cl.add_task(three_stage_task(true), Box::new(|_| 900));
    cl.set_controller(Box::new(GrowAt(5)));
    let out = cl.run();
    for p in &out.metrics.periods {
        let expect = if p.instance < 5 { 1 } else { 2 };
        assert_eq!(
            p.replicas_per_stage[1], expect,
            "instance {}: replica snapshot",
            p.instance
        );
    }
    // Stage records agree with the snapshots.
    for r in out.metrics.stage_records.iter().filter(|r| r.stage == 1) {
        let expect = if r.instance < 5 { 1 } else { 2 };
        assert_eq!(r.replicas, expect);
    }
}
