//! # rtds-workloads — workload pattern generators
//!
//! The paper evaluates the algorithms under three workload patterns
//! (Fig. 8): an **increasing ramp**, a **decreasing ramp**, and a
//! **triangular** pattern, each defined by a minimum and maximum workload
//! over a run of periods. This crate provides those three plus a family of
//! extensions (step, burst, sinusoid, bounded random walk) used by the
//! extension experiments.
//!
//! A pattern maps a period index to the number of data items (`tracks`)
//! arriving that period. Patterns are deterministic given their parameters
//! (and seed, where applicable); [`Pattern::tracks_at`] takes `&mut self`
//! only so that stateful patterns (the random walk) can memoize.
//!
//! ```
//! use rtds_workloads::{Pattern, Triangular, WorkloadRange};
//! let mut tri = Triangular::new(WorkloadRange::new(500, 10_500), 50);
//! assert_eq!(tri.tracks_at(0), 500);
//! assert_eq!(tri.tracks_at(50), 10_500);
//! assert_eq!(tri.tracks_at(100), 500);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// A deterministic per-period workload source.
pub trait Pattern: Send {
    /// Number of tracks arriving in period `period` (0-based).
    fn tracks_at(&mut self, period: u64) -> u64;

    /// Pattern family name for reports.
    fn name(&self) -> &'static str;
}

/// Workload interval shared by the paper's patterns: minimum and maximum
/// tracks per period.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct WorkloadRange {
    /// Minimum tracks per period.
    pub min: u64,
    /// Maximum tracks per period.
    pub max: u64,
}

impl WorkloadRange {
    /// Creates a range.
    ///
    /// # Panics
    /// Panics if `min > max`.
    pub fn new(min: u64, max: u64) -> Self {
        assert!(min <= max, "workload range inverted: {min} > {max}");
        WorkloadRange { min, max }
    }

    /// Linear interpolation: fraction 0 → min, 1 → max (clamped).
    pub fn lerp(&self, f: f64) -> u64 {
        let f = f.clamp(0.0, 1.0);
        (self.min as f64 + f * (self.max - self.min) as f64).round() as u64
    }
}

/// Constant workload.
#[derive(Debug, Clone, Copy)]
pub struct Constant(pub u64);

impl Pattern for Constant {
    fn tracks_at(&mut self, _period: u64) -> u64 {
        self.0
    }
    fn name(&self) -> &'static str {
        "constant"
    }
}

/// The paper's increasing-ramp pattern: "starts with the minimum workload
/// and gradually increases the workload until it reaches the maximum",
/// over `ramp_periods` periods, then holds at the maximum.
#[derive(Debug, Clone, Copy)]
pub struct IncreasingRamp {
    range: WorkloadRange,
    ramp_periods: u64,
}

impl IncreasingRamp {
    /// Creates the ramp.
    ///
    /// # Panics
    /// Panics if `ramp_periods == 0`.
    pub fn new(range: WorkloadRange, ramp_periods: u64) -> Self {
        assert!(ramp_periods > 0, "ramp needs at least one period");
        IncreasingRamp { range, ramp_periods }
    }
}

impl Pattern for IncreasingRamp {
    fn tracks_at(&mut self, period: u64) -> u64 {
        self.range
            .lerp(period.min(self.ramp_periods) as f64 / self.ramp_periods as f64)
    }
    fn name(&self) -> &'static str {
        "increasing-ramp"
    }
}

/// The paper's decreasing-ramp pattern: maximum down to minimum, then
/// holds at the minimum.
#[derive(Debug, Clone, Copy)]
pub struct DecreasingRamp {
    range: WorkloadRange,
    ramp_periods: u64,
}

impl DecreasingRamp {
    /// Creates the ramp.
    ///
    /// # Panics
    /// Panics if `ramp_periods == 0`.
    pub fn new(range: WorkloadRange, ramp_periods: u64) -> Self {
        assert!(ramp_periods > 0, "ramp needs at least one period");
        DecreasingRamp { range, ramp_periods }
    }
}

impl Pattern for DecreasingRamp {
    fn tracks_at(&mut self, period: u64) -> u64 {
        self.range
            .lerp(1.0 - period.min(self.ramp_periods) as f64 / self.ramp_periods as f64)
    }
    fn name(&self) -> &'static str {
        "decreasing-ramp"
    }
}

/// The paper's triangular pattern: "alternates between workload increases
/// and decreases" — a symmetric sawtooth with `half_period` periods per
/// leg, starting at the minimum.
#[derive(Debug, Clone, Copy)]
pub struct Triangular {
    range: WorkloadRange,
    half_period: u64,
}

impl Triangular {
    /// Creates the triangular pattern.
    ///
    /// # Panics
    /// Panics if `half_period == 0`.
    pub fn new(range: WorkloadRange, half_period: u64) -> Self {
        assert!(half_period > 0, "triangle needs a positive half-period");
        Triangular { range, half_period }
    }
}

impl Pattern for Triangular {
    fn tracks_at(&mut self, period: u64) -> u64 {
        let cycle = 2 * self.half_period;
        let pos = period % cycle;
        let f = if pos <= self.half_period {
            pos as f64 / self.half_period as f64
        } else {
            (cycle - pos) as f64 / self.half_period as f64
        };
        self.range.lerp(f)
    }
    fn name(&self) -> &'static str {
        "triangular"
    }
}

/// Extension: square wave alternating `low_periods` at the minimum and
/// `high_periods` at the maximum — the harshest test of adaptation speed.
#[derive(Debug, Clone, Copy)]
pub struct Step {
    range: WorkloadRange,
    low_periods: u64,
    high_periods: u64,
}

impl Step {
    /// Creates the square wave.
    ///
    /// # Panics
    /// Panics if either phase is empty.
    pub fn new(range: WorkloadRange, low_periods: u64, high_periods: u64) -> Self {
        assert!(low_periods > 0 && high_periods > 0, "phases must be non-empty");
        Step {
            range,
            low_periods,
            high_periods,
        }
    }
}

impl Pattern for Step {
    fn tracks_at(&mut self, period: u64) -> u64 {
        let cycle = self.low_periods + self.high_periods;
        if period % cycle < self.low_periods {
            self.range.min
        } else {
            self.range.max
        }
    }
    fn name(&self) -> &'static str {
        "step"
    }
}

/// Extension: baseline workload with short bursts to the maximum every
/// `every` periods, lasting `width` periods.
#[derive(Debug, Clone, Copy)]
pub struct Burst {
    range: WorkloadRange,
    every: u64,
    width: u64,
}

impl Burst {
    /// Creates the burst pattern.
    ///
    /// # Panics
    /// Panics unless `0 < width < every`.
    pub fn new(range: WorkloadRange, every: u64, width: u64) -> Self {
        assert!(width > 0 && width < every, "need 0 < width < every");
        Burst { range, every, width }
    }
}

impl Pattern for Burst {
    fn tracks_at(&mut self, period: u64) -> u64 {
        if period % self.every < self.width {
            self.range.max
        } else {
            self.range.min
        }
    }
    fn name(&self) -> &'static str {
        "burst"
    }
}

/// Extension: sinusoid between the range bounds with the given wavelength
/// in periods — a smooth analogue of the triangular pattern.
#[derive(Debug, Clone, Copy)]
pub struct Sinusoid {
    range: WorkloadRange,
    wavelength: u64,
}

impl Sinusoid {
    /// Creates the sinusoid.
    ///
    /// # Panics
    /// Panics if `wavelength == 0`.
    pub fn new(range: WorkloadRange, wavelength: u64) -> Self {
        assert!(wavelength > 0, "wavelength must be positive");
        Sinusoid { range, wavelength }
    }
}

impl Pattern for Sinusoid {
    fn tracks_at(&mut self, period: u64) -> u64 {
        let phase = period as f64 / self.wavelength as f64 * core::f64::consts::TAU;
        // Start at the minimum (like the triangle): use 1 - cos.
        self.range.lerp((1.0 - phase.cos()) / 2.0)
    }
    fn name(&self) -> &'static str {
        "sinusoid"
    }
}

/// Extension: bounded random walk — workload moves by a uniform step each
/// period, reflected at the range bounds. Deterministic per seed;
/// memoized so queries are O(1) amortized for sequential access.
#[derive(Debug, Clone)]
pub struct RandomWalk {
    range: WorkloadRange,
    max_step: u64,
    state: u64,
    memo: Vec<u64>,
}

impl RandomWalk {
    /// Creates the walk starting mid-range.
    ///
    /// # Panics
    /// Panics if `max_step == 0` or the range is a single point.
    pub fn new(range: WorkloadRange, max_step: u64, seed: u64) -> Self {
        assert!(max_step > 0, "walk needs a positive step");
        assert!(range.min < range.max, "walk needs a non-degenerate range");
        RandomWalk {
            range,
            max_step,
            state: seed | 1, // xorshift state must be nonzero
            memo: vec![(range.min + range.max) / 2],
        }
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*: plenty for workload jitter, no rand dependency here.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

impl Pattern for RandomWalk {
    fn tracks_at(&mut self, period: u64) -> u64 {
        let idx = usize::try_from(period).expect("period fits usize");
        while self.memo.len() <= idx {
            let prev = *self.memo.last().expect("memo never empty");
            let r = self.next_u64();
            let step = r % (2 * self.max_step + 1);
            let next = if step <= self.max_step {
                prev.saturating_add(step)
            } else {
                prev.saturating_sub(step - self.max_step)
            };
            self.memo.push(next.clamp(self.range.min, self.range.max));
        }
        self.memo[idx]
    }
    fn name(&self) -> &'static str {
        "random-walk"
    }
}

/// Extension: plays a sequence of patterns back to back, each for a fixed
/// number of periods, then repeats — mission phases (patrol, raid,
/// stand-down) as one pattern.
pub struct Composite {
    phases: Vec<(Box<dyn Pattern>, u64)>,
    cycle: u64,
}

impl Composite {
    /// Creates a composite from `(pattern, periods)` phases.
    ///
    /// # Panics
    /// Panics if there are no phases or any phase is empty.
    pub fn new(phases: Vec<(Box<dyn Pattern>, u64)>) -> Self {
        assert!(!phases.is_empty(), "composite needs phases");
        assert!(phases.iter().all(|(_, n)| *n > 0), "phases must be non-empty");
        let cycle = phases.iter().map(|(_, n)| n).sum();
        Composite { phases, cycle }
    }
}

impl Pattern for Composite {
    fn tracks_at(&mut self, period: u64) -> u64 {
        let mut pos = period % self.cycle;
        for (p, n) in &mut self.phases {
            if pos < *n {
                return p.tracks_at(pos);
            }
            pos -= *n;
        }
        unreachable!("pos < cycle by construction")
    }
    fn name(&self) -> &'static str {
        "composite"
    }
}

/// Adapts any pattern into the `FnMut(u64) -> u64` closure the simulator's
/// `add_task` expects.
pub fn into_workload_fn<P: Pattern + 'static>(mut p: P) -> Box<dyn FnMut(u64) -> u64 + Send> {
    Box::new(move |period| p.tracks_at(period))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn range() -> WorkloadRange {
        WorkloadRange::new(500, 10_500)
    }

    fn series<P: Pattern>(p: &mut P, n: u64) -> Vec<u64> {
        (0..n).map(|i| p.tracks_at(i)).collect()
    }

    #[test]
    fn range_lerp_clamps_and_interpolates() {
        let r = range();
        assert_eq!(r.lerp(0.0), 500);
        assert_eq!(r.lerp(1.0), 10_500);
        assert_eq!(r.lerp(0.5), 5_500);
        assert_eq!(r.lerp(-1.0), 500);
        assert_eq!(r.lerp(2.0), 10_500);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_range_panics() {
        let _ = WorkloadRange::new(10, 5);
    }

    #[test]
    fn increasing_ramp_goes_min_to_max_then_holds() {
        let mut p = IncreasingRamp::new(range(), 100);
        assert_eq!(p.tracks_at(0), 500);
        assert_eq!(p.tracks_at(100), 10_500);
        assert_eq!(p.tracks_at(250), 10_500, "holds after the ramp");
        let s = series(&mut p, 101);
        assert!(s.windows(2).all(|w| w[0] <= w[1]), "monotone increase");
    }

    #[test]
    fn decreasing_ramp_goes_max_to_min_then_holds() {
        let mut p = DecreasingRamp::new(range(), 100);
        assert_eq!(p.tracks_at(0), 10_500);
        assert_eq!(p.tracks_at(100), 500);
        assert_eq!(p.tracks_at(400), 500);
        let s = series(&mut p, 101);
        assert!(s.windows(2).all(|w| w[0] >= w[1]), "monotone decrease");
    }

    #[test]
    fn triangular_oscillates_between_bounds() {
        let mut p = Triangular::new(range(), 50);
        assert_eq!(p.tracks_at(0), 500);
        assert_eq!(p.tracks_at(50), 10_500);
        assert_eq!(p.tracks_at(100), 500);
        assert_eq!(p.tracks_at(150), 10_500);
        // Symmetry of the two legs.
        assert_eq!(p.tracks_at(25), p.tracks_at(75));
    }

    #[test]
    fn triangular_covers_full_range_repeatedly() {
        let mut p = Triangular::new(range(), 30);
        let s = series(&mut p, 300);
        assert_eq!(*s.iter().min().unwrap(), 500);
        assert_eq!(*s.iter().max().unwrap(), 10_500);
        let peaks = s.iter().filter(|&&v| v == 10_500).count();
        assert!(peaks >= 4, "several peaks over 300 periods: {peaks}");
    }

    #[test]
    fn step_alternates_phases_with_right_lengths() {
        let mut p = Step::new(range(), 10, 5);
        let s = series(&mut p, 30);
        assert!(s[..10].iter().all(|&v| v == 500));
        assert!(s[10..15].iter().all(|&v| v == 10_500));
        assert!(s[15..25].iter().all(|&v| v == 500));
    }

    #[test]
    fn burst_is_high_only_during_bursts() {
        let mut p = Burst::new(range(), 20, 3);
        let s = series(&mut p, 60);
        let highs = s.iter().filter(|&&v| v == 10_500).count();
        assert_eq!(highs, 9, "3 bursts x 3 periods");
        assert_eq!(s[0], 10_500, "burst opens each cycle");
        assert_eq!(s[3], 500);
    }

    #[test]
    fn sinusoid_starts_at_min_peaks_mid_wavelength() {
        let mut p = Sinusoid::new(range(), 100);
        assert_eq!(p.tracks_at(0), 500);
        assert_eq!(p.tracks_at(50), 10_500);
        assert_eq!(p.tracks_at(100), 500);
        let s = series(&mut p, 200);
        assert!(s.iter().all(|&v| (500..=10_500).contains(&v)));
    }

    #[test]
    fn random_walk_is_bounded_and_deterministic() {
        let mut a = RandomWalk::new(range(), 400, 42);
        let mut b = RandomWalk::new(range(), 400, 42);
        let sa = series(&mut a, 500);
        let sb = series(&mut b, 500);
        assert_eq!(sa, sb);
        assert!(sa.iter().all(|&v| (500..=10_500).contains(&v)));
        // It actually moves.
        let distinct: std::collections::HashSet<_> = sa.iter().collect();
        assert!(distinct.len() > 50, "walk explores: {}", distinct.len());
    }

    #[test]
    fn random_walk_different_seeds_differ() {
        let mut a = RandomWalk::new(range(), 400, 2);
        let mut b = RandomWalk::new(range(), 400, 4);
        assert_ne!(series(&mut a, 100), series(&mut b, 100));
    }

    #[test]
    fn random_walk_supports_random_access() {
        let mut a = RandomWalk::new(range(), 100, 7);
        let direct = a.tracks_at(250);
        let mut b = RandomWalk::new(range(), 100, 7);
        let sequential = series(&mut b, 251)[250];
        assert_eq!(direct, sequential);
    }

    #[test]
    fn workload_fn_adapter_matches_pattern() {
        let mut f = into_workload_fn(Triangular::new(range(), 50));
        let mut p = Triangular::new(range(), 50);
        for i in 0..120 {
            assert_eq!(f(i), p.tracks_at(i));
        }
    }

    #[test]
    fn composite_plays_phases_in_order_and_repeats() {
        let c = Composite::new(vec![
            (Box::new(Constant(100)), 3),
            (Box::new(IncreasingRamp::new(WorkloadRange::new(0, 1000), 4)), 5),
            (Box::new(Constant(50)), 2),
        ]);
        let mut c = c;
        // Phase 1: constant 100 for 3 periods.
        assert_eq!(series(&mut c, 3), vec![100, 100, 100]);
        // Phase 2: ramp (local periods 0..5).
        assert_eq!(c.tracks_at(3), 0);
        assert_eq!(c.tracks_at(7), 1000);
        // Phase 3: constant 50.
        assert_eq!(c.tracks_at(8), 50);
        assert_eq!(c.tracks_at(9), 50);
        // Repeats with cycle 10.
        assert_eq!(c.tracks_at(10), 100);
        assert_eq!(c.tracks_at(13), 0);
    }

    #[test]
    #[should_panic(expected = "needs phases")]
    fn empty_composite_panics() {
        let _ = Composite::new(vec![]);
    }

    #[test]
    fn pattern_names_are_stable() {
        assert_eq!(Constant(5).name(), "constant");
        assert_eq!(IncreasingRamp::new(range(), 1).name(), "increasing-ramp");
        assert_eq!(DecreasingRamp::new(range(), 1).name(), "decreasing-ramp");
        assert_eq!(Triangular::new(range(), 1).name(), "triangular");
        assert_eq!(Step::new(range(), 1, 1).name(), "step");
        assert_eq!(Burst::new(range(), 2, 1).name(), "burst");
        assert_eq!(Sinusoid::new(range(), 1).name(), "sinusoid");
        assert_eq!(RandomWalk::new(range(), 1, 0).name(), "random-walk");
    }
}
