//! Micro-benches of the substrate hot paths: event queue, predictor
//! evaluation, EQF assignment, monitoring classification.

use criterion::{criterion_group, criterion_main, Criterion};
use rtds_arm::eqf::{assign_deadlines, EqfVariant};
use rtds_arm::monitor::{classify, MonitorConfig};
use rtds_arm::online::OnlineRefiner;
use rtds_regression::model::{ExecLatencyModel, LatencySample};
use rtds_regression::validate::{cross_validate, FitMethod};
use rtds_bench::bench_predictor;
use rtds_sim::event::EventQueue;
use rtds_sim::time::{SimDuration, SimTime};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro");

    g.bench_function("event_queue_schedule_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1_000u64 {
                q.schedule(SimTime::from_micros((i * 7919) % 100_000 + 100_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            acc
        })
    });

    let predictor = bench_predictor();
    g.bench_function("predictor_eex_ecd", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for d in [1_000u64, 5_000, 10_000, 17_500] {
                acc += predictor.eex(2, std::hint::black_box(d), 35.0).as_millis_f64();
                acc += predictor.ecd(1, std::hint::black_box(d), 20_000).as_millis_f64();
            }
            acc
        })
    });

    let exec = [6.0, 12.0, 180.0, 20.0, 220.0];
    let comm = [40.0, 40.0, 40.0, 40.0];
    g.bench_function("eqf_classic_assign", |b| {
        b.iter(|| {
            assign_deadlines(
                std::hint::black_box(&exec),
                &comm,
                SimDuration::from_millis(990),
                EqfVariant::Classic,
            )
        })
    });
    g.bench_function("eqf_paper_literal_assign", |b| {
        b.iter(|| {
            assign_deadlines(
                std::hint::black_box(&exec),
                &comm,
                SimDuration::from_millis(990),
                EqfVariant::PaperLiteral,
            )
        })
    });

    let cfg = MonitorConfig::default();
    g.bench_function("monitor_classify", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for i in 0..100u64 {
                let h = classify(
                    SimDuration::from_millis(i * 3),
                    SimDuration::from_millis(200),
                    std::hint::black_box(&cfg),
                );
                hits += h.needs_replication() as usize;
            }
            hits
        })
    });
    let prior = ExecLatencyModel::from_coefficients([1e-5, 1e-3, 0.1], [1e-4, 1e-2, 1.0]);
    g.bench_function("online_refiner_observe_100", |b| {
        b.iter(|| {
            let mut r = OnlineRefiner::default_tuning(&prior);
            for i in 0..100u64 {
                let d = 1.0 + (i % 20) as f64;
                let u = 5.0 + (i % 8) as f64 * 10.0;
                r.observe(std::hint::black_box(d), u, prior.predict_raw(d, u));
            }
            r.model()
        })
    });

    let cv_samples: Vec<LatencySample> = (0..48)
        .map(|i| {
            let d = 1.0 + (i % 8) as f64 * 3.0;
            let u = 10.0 + (i / 8) as f64 * 12.0;
            LatencySample {
                d,
                u,
                latency_ms: (1e-4 * u + 0.1) * d * d + (0.02 * u + 1.0) * d,
            }
        })
        .collect();
    g.bench_function("cross_validate_4fold_48", |b| {
        b.iter(|| cross_validate(std::hint::black_box(&cv_samples), 4, FitMethod::Direct).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
