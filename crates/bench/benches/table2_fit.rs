//! Table 2 bench: fitting the Eq. (3) execution-latency model — the
//! paper's two-stage procedure vs the direct six-parameter least squares
//! (the first DESIGN.md ablation), across grid sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtds_regression::model::{ExecLatencyModel, LatencySample};

fn grid(n_utils: usize, n_sizes: usize) -> Vec<LatencySample> {
    let mut out = Vec::new();
    for ui in 0..n_utils {
        let u = 10.0 + 70.0 * ui as f64 / (n_utils - 1).max(1) as f64;
        for di in 0..n_sizes {
            let d = 2.0 + 170.0 * di as f64 / (n_sizes - 1).max(1) as f64;
            let latency = (1e-5 * u * u + 1e-3 * u + 0.01) * d * d
                + (1e-4 * u * u + 0.05 * u + 1.0) * d;
            out.push(LatencySample { d, u, latency_ms: latency });
        }
    }
    out
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_fit");
    for (n_utils, n_sizes) in [(4usize, 6usize), (5, 10), (8, 20)] {
        let samples = grid(n_utils, n_sizes);
        g.bench_with_input(
            BenchmarkId::new("two_stage", samples.len()),
            &samples,
            |b, s| b.iter(|| ExecLatencyModel::fit_two_stage(std::hint::black_box(s)).unwrap()),
        );
        g.bench_with_input(
            BenchmarkId::new("direct_lsq", samples.len()),
            &samples,
            |b, s| b.iter(|| ExecLatencyModel::fit_direct(std::hint::black_box(s)).unwrap()),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
