//! Fig. 9 bench: one triangular-pattern evaluation run per policy (the
//! unit of work behind every Fig. 9/10 data point).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtds_bench::{bench_predictor, bench_scenario};
use rtds_experiments::scenario::{run_scenario, PatternSpec, PolicySpec};

fn bench(c: &mut Criterion) {
    let predictor = bench_predictor();
    let mut g = c.benchmark_group("fig9_triangular");
    g.sample_size(10);
    for policy in [
        PolicySpec::None,
        PolicySpec::Predictive,
        PolicySpec::NonPredictive,
        PolicySpec::Incremental,
    ] {
        let cfg = bench_scenario(PatternSpec::Triangular { half_period: 10 }, policy);
        g.bench_with_input(BenchmarkId::new("run", policy.name()), &cfg, |b, cfg| {
            b.iter(|| run_scenario(std::hint::black_box(cfg), &predictor))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
