//! Hot-path benches guarding the simulator-core performance pass:
//! end-to-end evaluation runs (dispatch chains + scratch buffers), event
//! queue churn under cancellation (tombstone compaction), batch
//! scheduling, and the incremental RLS refit.
//!
//! CI runs this in quick mode and compares against the checked-in
//! `BENCH_hotpath.json` baseline (see `scripts/check_bench_regression.py`);
//! regenerate the baseline with:
//!
//! ```text
//! cargo bench --bench hotpath -- --save-json BENCH_hotpath.json
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtds_bench::{bench_bg_heavy_scenario, bench_predictor, bench_scenario, run_large_cluster};
use rtds_experiments::scenario::{run_scenario, PatternSpec, PolicySpec};
use rtds_regression::RecursiveLeastSquares;
use rtds_sim::event::EventQueue;
use rtds_sim::time::SimTime;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath");
    g.sample_size(10);

    // End-to-end evaluation run: the unit of work behind every figure
    // sweep point. Dominated by the dispatch/bg-poll hot loop, so this is
    // where the virtual dispatch chains and scratch buffers show up.
    let predictor = bench_predictor();
    for policy in [PolicySpec::None, PolicySpec::Predictive] {
        let cfg = bench_scenario(PatternSpec::Triangular { half_period: 10 }, policy);
        g.bench_with_input(
            BenchmarkId::new("scenario_run", policy.name()),
            &cfg,
            |b, cfg| b.iter(|| run_scenario(std::hint::black_box(cfg), &predictor)),
        );
    }

    // Background-dominated evaluation run (45 % ambient load per node):
    // the case the background-load fast path targets. The `off` variant
    // is byte-identical but pays every BgPoll/boundary heap round-trip,
    // so the gap between the two is the fast path's win.
    for (name, fast) in [("bg_heavy", true), ("bg_heavy_no_ff", false)] {
        let cfg = bench_bg_heavy_scenario(fast);
        g.bench_with_input(
            BenchmarkId::new("scenario_run", name),
            &cfg,
            |b, cfg| b.iter(|| run_scenario(std::hint::black_box(cfg), &predictor)),
        );
    }

    // Large-cluster scaling: pure ambient load, event volume linear in
    // node count. The fast path's advantage must *grow* with node count
    // (compare 16 → 64 against their `no_ff` twins).
    for n_nodes in [16usize, 64] {
        for fast in [true, false] {
            let name = format!("{n_nodes}x{}", if fast { "ff" } else { "no_ff" });
            g.bench_with_input(
                BenchmarkId::new("large_cluster", name),
                &(n_nodes, fast),
                |b, &(n, fast)| b.iter(|| run_large_cluster(std::hint::black_box(n), fast)),
            );
        }
    }

    // Cancellation-heavy queue churn: schedule 1k, cancel every other
    // event, pop the rest. Exercises the tombstone lazy-deletion path and
    // the heap compaction threshold.
    g.bench_function("event_queue_cancel_churn_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let handles: Vec<_> = (0..1_000u64)
                .map(|i| q.schedule(SimTime::from_micros((i * 7919) % 50_000 + 100_000), i))
                .collect();
            for h in handles.iter().step_by(2) {
                q.cancel(*h);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            acc
        })
    });

    // Bulk admission: one reserve + heapify pass instead of per-event
    // sift-ups (the period-release path).
    g.bench_function("event_queue_batch_schedule_4k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            q.schedule_batch(
                (0..4_000u64).map(|i| (SimTime::from_micros((i * 104_729) % 200_000 + 100_000), i)),
            );
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            acc
        })
    });

    // Incremental refit: 1k rank-1 Sherman–Morrison updates over the
    // Eq. (3) feature dimension — the per-observation cost that replaced
    // the O(window) batch refit.
    g.bench_function("rls_update_k6_1k", |b| {
        b.iter(|| {
            let mut rls = RecursiveLeastSquares::<6>::new([0.0; 6], 0.98, 1e3);
            for i in 0..1_000u64 {
                let d = 1.0 + (i % 20) as f64;
                let u = 5.0 + (i % 8) as f64 * 10.0;
                let phi = [
                    u * u * d * d * 1e-5,
                    u * d * d * 1e-3,
                    d * d * 1e-1,
                    u * u * d * 1e-3,
                    u * d * 1e-1,
                    d,
                ];
                rls.update(std::hint::black_box(&phi), 0.02 * d * d + 1.2 * d);
            }
            *rls.theta()
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
