//! Figs. 10/13 bench: the combined-metric reduction over a sweep's worth
//! of summaries, plus a miniature two-point sweep end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use rtds_arm::metrics::combined_metric;
use rtds_bench::bench_predictor;
use rtds_experiments::scenario::{PatternSpec, PolicySpec};
use rtds_experiments::sweep::{run_sweep, SweepConfig};
use rtds_sim::metrics::RunSummary;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_fig13_combined");
    let summaries: Vec<RunSummary> = (0..1_000)
        .map(|i| RunSummary {
            missed_deadline_pct: (i % 10) as f64,
            avg_cpu_util_pct: 10.0 + (i % 30) as f64,
            avg_net_util_pct: 5.0 + (i % 20) as f64,
            avg_replicas: 1.0 + (i % 5) as f64,
            decided_periods: 240,
            released_periods: 240,
            placement_changes: i as u64,
        })
        .collect();
    g.bench_function("combined_metric_1000", |b| {
        b.iter(|| {
            summaries
                .iter()
                .map(|s| combined_metric(std::hint::black_box(s), 6))
                .sum::<f64>()
        })
    });

    let predictor = bench_predictor();
    g.sample_size(10);
    g.bench_function("mini_sweep_2x2", |b| {
        let mut cfg = SweepConfig::quick(PatternSpec::Triangular { half_period: 10 });
        cfg.units = vec![8, 24];
        cfg.policies = vec![PolicySpec::Predictive, PolicySpec::NonPredictive];
        cfg.n_periods = 20;
        cfg.threads = 2;
        b.iter(|| run_sweep(std::hint::black_box(&cfg), &predictor))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
