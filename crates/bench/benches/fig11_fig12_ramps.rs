//! Figs. 11-12 bench: one evaluation run per ramp pattern per policy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtds_bench::{bench_predictor, bench_scenario};
use rtds_experiments::scenario::{run_scenario, PatternSpec, PolicySpec};

fn bench(c: &mut Criterion) {
    let predictor = bench_predictor();
    let mut g = c.benchmark_group("fig11_fig12_ramps");
    g.sample_size(10);
    let patterns = [
        ("fig11_increasing", PatternSpec::Increasing { ramp_periods: 40 }),
        ("fig12_decreasing", PatternSpec::Decreasing { ramp_periods: 40 }),
    ];
    for (name, pattern) in patterns {
        for policy in [PolicySpec::Predictive, PolicySpec::NonPredictive] {
            let cfg = bench_scenario(pattern, policy);
            g.bench_with_input(
                BenchmarkId::new(name, policy.name()),
                &cfg,
                |b, cfg| b.iter(|| run_scenario(std::hint::black_box(cfg), &predictor)),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
