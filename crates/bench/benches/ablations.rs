//! Ablation benches for the design choices DESIGN.md calls out: EQF
//! variant, slack threshold, and processor-choice rule, each timed as a
//! full evaluation run so the cost of the alternative is visible. (Their
//! *quality* impact is reported by `cargo run --release --bin ablations`
//! in rtds-experiments.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtds_arm::config::ArmConfig;
use rtds_arm::eqf::EqfVariant;
use rtds_arm::manager::ResourceManager;
use rtds_bench::bench_predictor;
use rtds_dynbench::app::aaw_task;
use rtds_sim::cluster::{Cluster, ClusterApi, ClusterConfig};
use rtds_sim::time::SimDuration;
use rtds_workloads::{Pattern, Triangular, WorkloadRange};

fn run_with(cfg: ArmConfig) -> f64 {
    let mut cluster = Cluster::new(ClusterConfig::paper_baseline(7, SimDuration::from_secs(30)));
    let mut pattern = Triangular::new(WorkloadRange::new(500, 12_000), 8);
    cluster.add_task(aaw_task(), Box::new(move |i| pattern.tracks_at(i)));
    cluster.set_controller(Box::new(ResourceManager::new(cfg, bench_predictor())));
    let out = cluster.run();
    out.metrics.summarize(&[2, 4]).missed_deadline_pct
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);

    for (name, eqf) in [("classic", EqfVariant::Classic), ("paper_literal", EqfVariant::PaperLiteral)] {
        let mut cfg = ArmConfig::paper_predictive();
        cfg.eqf = eqf;
        g.bench_with_input(BenchmarkId::new("eqf_variant", name), &cfg, |b, cfg| {
            b.iter(|| run_with(std::hint::black_box(*cfg)))
        });
    }

    for slack in [0.1f64, 0.2, 0.4] {
        let mut cfg = ArmConfig::paper_predictive();
        cfg.monitor.slack_fraction = slack;
        cfg.monitor.shutdown_slack_fraction = (slack + 0.4).min(0.9);
        g.bench_with_input(
            BenchmarkId::new("slack_fraction", format!("{slack}")),
            &cfg,
            |b, cfg| b.iter(|| run_with(std::hint::black_box(*cfg))),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
