//! Figs. 2-4 bench: one profiling grid point (a full single-node
//! simulation at a controlled utilization) at the figures' two operating
//! points.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtds_dynbench::app::{eval_decide_cost, filter_cost};
use rtds_dynbench::profile::{profile_execution, ProfileConfig};

fn point_cfg(u: f64, d: u64) -> ProfileConfig {
    ProfileConfig {
        utilizations_pct: vec![u],
        data_sizes: vec![d],
        periods_per_point: 3,
        warmup_periods: 1,
        seed: 0xBE,
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_profile");
    g.sample_size(10);
    g.bench_with_input(
        BenchmarkId::new("filter_point", "u80_d7500"),
        &point_cfg(80.0, 7_500),
        |b, cfg| b.iter(|| profile_execution(filter_cost(), std::hint::black_box(cfg))),
    );
    g.bench_with_input(
        BenchmarkId::new("evaldecide_point", "u60_d6000"),
        &point_cfg(60.0, 6_000),
        |b, cfg| b.iter(|| profile_execution(eval_decide_cost(), std::hint::black_box(cfg))),
    );
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
