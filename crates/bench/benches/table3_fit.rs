//! Table 3 bench: fitting the Eq. (5) buffer-delay slope.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtds_regression::buffer::{BufferDelayModel, BufferDelaySample};

fn samples(n: usize) -> Vec<BufferDelaySample> {
    (1..=n)
        .map(|i| BufferDelaySample {
            total_tracks: 250.0 * i as f64,
            delay_ms: 0.007 * 250.0 * i as f64 * (1.0 + 0.05 * ((i % 3) as f64 - 1.0)),
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3_fit");
    for n in [10usize, 100, 1_000] {
        let s = samples(n);
        g.bench_with_input(BenchmarkId::new("through_origin", n), &s, |b, s| {
            b.iter(|| BufferDelayModel::fit(std::hint::black_box(s)).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
