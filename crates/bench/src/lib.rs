//! # rtds-bench — benchmark harness
//!
//! Criterion benches, one per table/figure of the paper plus
//! micro-benches of the hot substrate paths and the DESIGN.md ablations.
//! Shared scenario builders live here so every bench measures the same
//! configurations the experiments report.

#![forbid(unsafe_code)]

use rtds_arm::predictor::Predictor;
use rtds_experiments::models::quick_predictor;
use rtds_experiments::scenario::{
    FaultPlan, ObserveConfig, PatternSpec, PolicySpec, ScenarioConfig,
};
use rtds_workloads::WorkloadRange;

/// A short but representative evaluation scenario: 40 periods of the
/// triangular pattern at the pre-threshold high-workload point.
pub fn bench_scenario(pattern: PatternSpec, policy: PolicySpec) -> ScenarioConfig {
    ScenarioConfig {
        pattern,
        policy,
        workload: WorkloadRange::new(500, 12_000),
        n_periods: 40,
        ambient_util: 0.10,
        seed: 0xBE_0C4,
        scheduler: rtds_sim::sched::SchedulerKind::paper_baseline(),
        online_refinement: false,
        failures: Vec::new(),
        faults: FaultPlan::default(),
        observe: ObserveConfig::default(),
    }
}

/// The predictor every bench shares (analytic: no profiling in the timed
/// path).
pub fn bench_predictor() -> Predictor {
    quick_predictor()
}
