//! # rtds-bench — benchmark harness
//!
//! Criterion benches, one per table/figure of the paper plus
//! micro-benches of the hot substrate paths and the DESIGN.md ablations.
//! Shared scenario builders live here so every bench measures the same
//! configurations the experiments report.

#![forbid(unsafe_code)]

use rtds_arm::predictor::Predictor;
use rtds_experiments::models::quick_predictor;
use rtds_experiments::scenario::{
    FaultPlan, ObserveConfig, PatternSpec, PolicySpec, ScenarioConfig,
};
use rtds_sim::cluster::{Cluster, ClusterApi, ClusterConfig};
use rtds_sim::ids::{LoadGenId, NodeId};
use rtds_sim::load::PoissonLoad;
use rtds_sim::metrics::RunMetrics;
use rtds_sim::time::SimDuration;
use rtds_workloads::WorkloadRange;

/// A short but representative evaluation scenario: 40 periods of the
/// triangular pattern at the pre-threshold high-workload point.
pub fn bench_scenario(pattern: PatternSpec, policy: PolicySpec) -> ScenarioConfig {
    ScenarioConfig {
        pattern,
        policy,
        workload: WorkloadRange::new(500, 12_000),
        n_periods: 40,
        ambient_util: 0.10,
        seed: 0xBE_0C4,
        scheduler: rtds_sim::sched::SchedulerKind::paper_baseline(),
        online_refinement: false,
        failures: Vec::new(),
        faults: FaultPlan::default(),
        observe: ObserveConfig::default(),
        bg_fast_path: true,
    }
}

/// A background-dominated variant of [`bench_scenario`]: same pipeline,
/// but ambient load at 45 % per node, so `BgPoll`/background-dispatch
/// volume dominates the event budget. This is the case the background
/// fast path targets; benched with the fast path both on and off.
pub fn bench_bg_heavy_scenario(bg_fast_path: bool) -> ScenarioConfig {
    ScenarioConfig {
        ambient_util: 0.45,
        bg_fast_path,
        ..bench_scenario(
            PatternSpec::Triangular { half_period: 5 },
            PolicySpec::Predictive,
        )
    }
}

/// Runs a pure ambient-load cluster of `n_nodes` (no application task):
/// the large-cluster scaling case, where background event volume grows
/// linearly with node count and every node is eligible for boundary
/// elision. Returns the metrics so benches can keep the result live.
pub fn run_large_cluster(n_nodes: usize, bg_fast_path: bool) -> RunMetrics {
    let mut cfg = ClusterConfig::paper_baseline(0xC1_05E ^ n_nodes as u64, SimDuration::from_secs(20));
    cfg.n_nodes = n_nodes;
    cfg.bg_fast_path = bg_fast_path;
    let mut cluster = Cluster::new(cfg);
    for n in 0..n_nodes {
        cluster.add_load(Box::new(PoissonLoad::with_utilization(
            LoadGenId(n as u32),
            NodeId(n as u32),
            0.60,
            SimDuration::from_millis(2),
        )));
    }
    cluster.run().metrics
}

/// The predictor every bench shares (analytic: no profiling in the timed
/// path).
pub fn bench_predictor() -> Predictor {
    quick_predictor()
}
