//! Profile-data persistence.
//!
//! A full profiling campaign takes simulated hours; its output — the
//! latency grid per replicable subtask plus the buffer-delay samples — is
//! worth keeping. [`ProfileData`] bundles it with the fitted models and
//! round-trips through JSON.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use rtds_regression::buffer::{BufferDelayModel, BufferDelaySample};
use rtds_regression::model::{ExecLatencyModel, LatencySample};

/// A complete profiling campaign: raw samples and fitted models.
#[derive(Debug, Clone, Default)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct ProfileData {
    /// Execution-latency samples per profiled subtask, keyed by the
    /// subtask's pipeline index (0-based).
    pub exec_samples: BTreeMap<usize, Vec<LatencySample>>,
    /// Fitted Eq. (3) models per subtask, same key.
    pub exec_models: BTreeMap<usize, ExecLatencyModel>,
    /// Buffer-delay samples.
    pub buffer_samples: Vec<BufferDelaySample>,
    /// Fitted Eq. (5) model.
    pub buffer_model: Option<BufferDelayModel>,
    /// Seed the campaign ran with, for provenance.
    pub seed: u64,
}

impl ProfileData {
    /// Fits (or re-fits) every model from the stored samples using the
    /// paper's two-stage procedure. Subtasks whose samples cannot support
    /// a fit are skipped; returns how many models were fitted.
    pub fn fit_all(&mut self) -> usize {
        let mut fitted = 0;
        for (&stage, samples) in &self.exec_samples {
            if let Ok(m) = ExecLatencyModel::fit_two_stage(samples) {
                self.exec_models.insert(stage, m);
                fitted += 1;
            }
        }
        if let Ok(b) = BufferDelayModel::fit(&self.buffer_samples) {
            self.buffer_model = Some(b);
            fitted += 1;
        }
        fitted
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("ProfileData is always serializable")
    }

    /// Deserializes from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Writes the profile to a file.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Loads a profile from a file.
    pub fn load(path: &Path) -> io::Result<Self> {
        let s = std::fs::read_to_string(path)?;
        Self::from_json(&s).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_grid() -> Vec<LatencySample> {
        let mut out = Vec::new();
        for &u in &[10.0, 40.0, 70.0] {
            for d in (1..=6).map(|i| i as f64 * 2.0) {
                out.push(LatencySample {
                    d,
                    u,
                    latency_ms: (0.01 * u + 0.1) * d * d + (0.05 * u + 1.0) * d,
                });
            }
        }
        out
    }

    #[test]
    fn fit_all_fits_models_from_samples() {
        let mut pd = ProfileData {
            seed: 9,
            ..Default::default()
        };
        pd.exec_samples.insert(2, sample_grid());
        pd.buffer_samples = (1..=10)
            .map(|i| BufferDelaySample {
                total_tracks: 100.0 * i as f64,
                delay_ms: 0.05 * i as f64,
            })
            .collect();
        let n = pd.fit_all();
        assert_eq!(n, 2);
        assert!(pd.exec_models[&2].stats.r2 > 0.999);
        assert!((pd.buffer_model.unwrap().k - 0.0005).abs() < 1e-9);
    }

    #[test]
    fn fit_all_skips_unfittable_subtasks() {
        let mut pd = ProfileData::default();
        pd.exec_samples.insert(0, vec![]); // empty: cannot fit
        pd.exec_samples.insert(1, sample_grid());
        assert_eq!(pd.fit_all(), 1);
        assert!(!pd.exec_models.contains_key(&0));
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let mut pd = ProfileData {
            seed: 1234,
            ..Default::default()
        };
        pd.exec_samples.insert(4, sample_grid());
        pd.fit_all();
        let json = pd.to_json();
        let back = ProfileData::from_json(&json).unwrap();
        assert_eq!(back.seed, 1234);
        assert_eq!(back.exec_samples[&4].len(), pd.exec_samples[&4].len());
        let (a, b) = (back.exec_models[&4], pd.exec_models[&4]);
        assert_eq!(a.a, b.a);
        assert_eq!(a.b, b.b);
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir().join("rtds-dynbench-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("profile.json");
        let mut pd = ProfileData {
            seed: 77,
            ..Default::default()
        };
        pd.exec_samples.insert(2, sample_grid());
        pd.save(&path).unwrap();
        let back = ProfileData::load(&path).unwrap();
        assert_eq!(back.seed, 77);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_malformed_json() {
        let dir = std::env::temp_dir().join("rtds-dynbench-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        std::fs::write(&path, "{not json").unwrap();
        assert!(ProfileData::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
