//! Application profiling.
//!
//! The paper's predictive algorithm is driven by "application profile data
//! that is obtained by measuring the timeliness of the application for a
//! set of external and internal load situations" (§1). This module is that
//! measurement campaign, run against the simulator instead of the authors'
//! physical testbed:
//!
//! * [`profile_execution`] sweeps a subtask over a grid of data sizes
//!   (external load) × background CPU utilizations (internal load) and
//!   records its execution latency — the raw material of Figs. 2–4 and of
//!   the Eq. (3) fit;
//! * [`profile_buffer_delay`] drives a replicated pipeline across a range
//!   of periodic workloads and extracts the network buffer delay — the raw
//!   material of the Eq. (5) slope (Table 3).

use rtds_regression::buffer::BufferDelaySample;
use rtds_regression::model::LatencySample;
use rtds_sim::clock::ClockConfig;
use rtds_sim::cluster::{Cluster, ClusterApi, ClusterConfig};
use rtds_sim::control::{ControlAction, ControlContext, Controller, PeriodObservation};
use rtds_sim::ids::{LoadGenId, NodeId, SubtaskIdx, TaskId};
use rtds_sim::load::PeriodicLoad;
use rtds_sim::net::BusConfig;
use rtds_sim::pipeline::{PolynomialCost, StageSpec, TaskSpec};
use rtds_sim::time::SimDuration;

/// Grid and repetition parameters of a profiling campaign.
#[derive(Debug, Clone)]
pub struct ProfileConfig {
    /// Background CPU utilization levels to profile at, percent.
    pub utilizations_pct: Vec<f64>,
    /// Data sizes to profile at, tracks.
    pub data_sizes: Vec<u64>,
    /// Measured periods per grid point (after warm-up).
    pub periods_per_point: usize,
    /// Warm-up periods discarded per grid point.
    pub warmup_periods: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        ProfileConfig {
            utilizations_pct: vec![10.0, 25.0, 40.0, 60.0, 80.0],
            data_sizes: vec![500, 1_500, 3_000, 5_000, 7_500, 10_000, 13_000, 17_500],
            periods_per_point: 5,
            warmup_periods: 2,
            seed: 0xD19_BE0C4,
        }
    }
}

impl ProfileConfig {
    /// A coarse grid for tests and quick runs.
    pub fn quick(seed: u64) -> Self {
        ProfileConfig {
            utilizations_pct: vec![10.0, 40.0, 70.0],
            data_sizes: vec![1_000, 4_000, 8_000],
            periods_per_point: 3,
            warmup_periods: 1,
            seed,
        }
    }
}

/// Profiles one subtask's execution latency over the configured grid.
///
/// Each grid point runs the subtask alone on a single node whose ambient
/// utilization is held at the target by a duty-cycle background load — the
/// controlled "internal load situation". The measured latency is the mean
/// over the configured number of periods of the job's response time
/// (release → completion) under round-robin contention.
pub fn profile_execution(cost: PolynomialCost, cfg: &ProfileConfig) -> Vec<LatencySample> {
    let mut out = Vec::with_capacity(cfg.utilizations_pct.len() * cfg.data_sizes.len());
    for (ui, &u) in cfg.utilizations_pct.iter().enumerate() {
        assert!((0.0..100.0).contains(&u), "profiling utilization {u}%");
        for (di, &d) in cfg.data_sizes.iter().enumerate() {
            let latency = measure_point(cost, d, u, cfg, (ui * 1000 + di) as u64);
            out.push(LatencySample {
                d: d as f64 / 100.0,
                u,
                latency_ms: latency,
            });
        }
    }
    out
}

/// Runs one grid point and returns the mean observed latency in ms.
fn measure_point(
    cost: PolynomialCost,
    tracks: u64,
    util_pct: f64,
    cfg: &ProfileConfig,
    point_salt: u64,
) -> f64 {
    // Give the point a generous period so even a stretched job finishes:
    // intrinsic demand inflated by round-robin sharing at the target
    // utilization, with 4x headroom, floored at one second.
    let demand_ms = cost.demand(tracks).as_millis_f64();
    let stretched = demand_ms / (1.0 - util_pct / 100.0).max(0.05);
    let period = SimDuration::from_millis_f64((stretched * 4.0).max(1_000.0));
    let n_periods = (cfg.warmup_periods + cfg.periods_per_point) as u64;
    let horizon = period * (n_periods + 1);

    let mut config = ClusterConfig {
        n_nodes: 1,
        scheduler: rtds_sim::sched::SchedulerKind::paper_baseline(),
        bus: BusConfig::paper_baseline(),
        clock: ClockConfig::perfect(),
        seed: cfg.seed ^ point_salt,
        sample_interval: SimDuration::from_millis(100),
        max_in_flight: 8,
        release_jitter_us: 0,
        horizon,
        bg_fast_path: true,
    };
    config.bus.per_message_overhead_bytes = 0;

    let mut cluster = Cluster::new(config);
    cluster.add_task(
        TaskSpec {
            id: TaskId(0),
            name: "probe".into(),
            period,
            deadline: period,
            track_bytes: 80,
            stages: vec![StageSpec {
                name: "probe".into(),
                cost,
                replicable: false,
                home: NodeId(0),
                output_bytes_per_track: 0.0,
            }],
        },
        Box::new(move |_| tracks),
    );
    if util_pct > 0.0 {
        cluster.add_load(Box::new(PeriodicLoad::new(
            LoadGenId(0),
            NodeId(0),
            SimDuration::from_millis(10),
            util_pct / 100.0,
        )));
    }
    let outcome = cluster.run();
    let latencies: Vec<f64> = outcome
        .metrics
        .periods
        .iter()
        .skip(cfg.warmup_periods)
        .take(cfg.periods_per_point)
        .filter_map(|p| p.end_to_end.map(|d| d.as_millis_f64()))
        .collect();
    assert!(
        !latencies.is_empty(),
        "profiling point (d={tracks}, u={util_pct}) produced no completed periods"
    );
    latencies.iter().sum::<f64>() / latencies.len() as f64
}

/// Pins one stage of task 0 to a fixed replica set from the first period.
struct PinReplicas {
    stage: SubtaskIdx,
    nodes: Vec<NodeId>,
}

impl Controller for PinReplicas {
    fn on_period_boundary(
        &mut self,
        _completed: &[PeriodObservation],
        ctx: &ControlContext,
    ) -> Vec<ControlAction> {
        if ctx.placements[0][self.stage.index()] != self.nodes {
            vec![ControlAction::SetPlacement {
                task: TaskId(0),
                subtask: self.stage,
                nodes: self.nodes.clone(),
            }]
        } else {
            Vec::new()
        }
    }

    fn name(&self) -> &'static str {
        "pin-replicas"
    }
}

/// Profiles the network buffer delay: a two-stage pipeline whose second
/// stage is pinned to `replicas` replicas, so each period the predecessor
/// fans `replicas` simultaneous messages onto the shared segment and the
/// later ones queue. For each total periodic workload in
/// `cfg.data_sizes`, the worst per-replica inbound delay minus the
/// message's own transmission time and propagation is one `Dbuf` sample.
pub fn profile_buffer_delay(cfg: &ProfileConfig, replicas: usize) -> Vec<BufferDelaySample> {
    assert!((2..=4).contains(&replicas), "need 2-4 replicas to create queueing");
    let mut out = Vec::new();
    let bus = BusConfig::paper_baseline();
    for (di, &tracks) in cfg.data_sizes.iter().enumerate() {
        // The observed inbound delay of the slowest replica includes its
        // own wire time and propagation; subtracting both isolates the
        // queueing (buffer) component that Eq. (5) models.
        let share = tracks / replicas as u64 + u64::from(tracks % replicas as u64 != 0);
        let share_bytes = (share as f64 * 80.0).ceil() as u64;
        let dtrans_ms = bus.wire_time(share_bytes).as_millis_f64();
        let prop_ms = bus.propagation.as_millis_f64();
        let delays = observe_stage_delays(cfg, tracks, replicas, di as u64);
        for worst_ms in delays {
            let dbuf = (worst_ms - dtrans_ms - prop_ms).max(0.0);
            out.push(BufferDelaySample {
                total_tracks: tracks as f64,
                delay_ms: dbuf,
            });
        }
    }
    out
}

/// Controller that both pins replicas and records the worst inbound
/// message delay of the pinned stage for every completed instance.
struct PinAndObserve {
    pin: PinReplicas,
    delays_ms: std::sync::Arc<std::sync::Mutex<Vec<f64>>>,
}

impl Controller for PinAndObserve {
    fn on_period_boundary(
        &mut self,
        completed: &[PeriodObservation],
        ctx: &ControlContext,
    ) -> Vec<ControlAction> {
        let mut sink = self.delays_ms.lock().expect("observer lock");
        for obs in completed {
            if let Some(st) = obs.stages.get(self.pin.stage.index()) {
                if st.replicas as usize == self.pin.nodes.len() {
                    sink.push(st.inbound_msg_delay.as_millis_f64());
                }
            }
        }
        drop(sink);
        self.pin.on_period_boundary(completed, ctx)
    }

    fn name(&self) -> &'static str {
        "pin-and-observe"
    }
}

fn observe_stage_delays(
    cfg: &ProfileConfig,
    tracks: u64,
    replicas: usize,
    salt: u64,
) -> Vec<f64> {
    let period = SimDuration::from_secs(1);
    let n_periods = (cfg.warmup_periods + cfg.periods_per_point) as u64;
    let config = ClusterConfig {
        n_nodes: 6,
        scheduler: rtds_sim::sched::SchedulerKind::paper_baseline(),
        bus: BusConfig::paper_baseline(),
        clock: ClockConfig::perfect(),
        seed: cfg.seed ^ (0x0B5E ^ salt),
        sample_interval: SimDuration::from_millis(100),
        max_in_flight: 8,
        release_jitter_us: 0,
        horizon: period * (n_periods + 2),
        bg_fast_path: true,
    };
    let mut cluster = Cluster::new(config);
    cluster.add_task(crate::app::two_stage_task(), Box::new(move |_| tracks));
    let delays = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
    cluster.set_controller(Box::new(PinAndObserve {
        pin: PinReplicas {
            stage: SubtaskIdx(1),
            nodes: (2..2 + replicas).map(|i| NodeId(i as u32)).collect(),
        },
        delays_ms: delays.clone(),
    }));
    let _ = cluster.run();
    let v = delays.lock().expect("observer lock").clone();
    let skip = cfg.warmup_periods.min(v.len());
    v[skip..].iter().copied().take(cfg.periods_per_point).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtds_regression::model::ExecLatencyModel;

    #[test]
    fn execution_profile_covers_the_grid() {
        let cfg = ProfileConfig::quick(1);
        let samples = profile_execution(crate::app::filter_cost(), &cfg);
        assert_eq!(samples.len(), 9);
        // Latency grows with d at fixed u, and with u at fixed d.
        let at = |d: f64, u: f64| {
            samples
                .iter()
                .find(|s| (s.d - d).abs() < 1e-9 && (s.u - u).abs() < 1e-9)
                .expect("grid point present")
                .latency_ms
        };
        assert!(at(40.0, 40.0) > at(10.0, 40.0));
        assert!(at(40.0, 70.0) > at(40.0, 10.0));
    }

    #[test]
    fn profiled_latency_reflects_round_robin_stretch() {
        let cfg = ProfileConfig::quick(2);
        let cost = crate::app::filter_cost();
        let samples = profile_execution(cost, &cfg);
        // At low utilization, observed ≈ intrinsic demand.
        let low = samples
            .iter()
            .find(|s| (s.u - 10.0).abs() < 1e-9 && (s.d - 80.0).abs() < 1e-9)
            .unwrap();
        let intrinsic = cost.demand(8_000).as_millis_f64();
        assert!(
            low.latency_ms >= intrinsic && low.latency_ms < 1.5 * intrinsic,
            "low-util latency {} vs intrinsic {intrinsic}",
            low.latency_ms
        );
        // At 70 %, stretch should be roughly 1/(1-0.7) ≈ 3.3x.
        let high = samples
            .iter()
            .find(|s| (s.u - 70.0).abs() < 1e-9 && (s.d - 80.0).abs() < 1e-9)
            .unwrap();
        let stretch = high.latency_ms / intrinsic;
        assert!(
            (2.0..5.0).contains(&stretch),
            "70% stretch {stretch} out of plausible band"
        );
    }

    #[test]
    fn profile_supports_eq3_fit_with_good_r2() {
        let cfg = ProfileConfig {
            utilizations_pct: vec![10.0, 30.0, 50.0, 70.0],
            data_sizes: vec![1_000, 3_000, 6_000, 10_000],
            periods_per_point: 3,
            warmup_periods: 1,
            seed: 3,
        };
        let samples = profile_execution(crate::app::filter_cost(), &cfg);
        let model = ExecLatencyModel::fit_two_stage(&samples).unwrap();
        assert!(model.stats.r2 > 0.95, "r2 {}", model.stats.r2);
    }

    #[test]
    fn profiling_is_deterministic_per_seed() {
        let cfg = ProfileConfig::quick(77);
        let a = profile_execution(crate::app::filter_cost(), &cfg);
        let b = profile_execution(crate::app::filter_cost(), &cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.latency_ms, y.latency_ms, "bit-identical profiling");
        }
        // A different seed perturbs background phases and thus latencies.
        let c = profile_execution(crate::app::filter_cost(), &ProfileConfig::quick(78));
        assert!(a.iter().zip(&c).any(|(x, y)| x.latency_ms != y.latency_ms));
    }

    #[test]
    fn buffer_delay_grows_with_workload() {
        let cfg = ProfileConfig {
            utilizations_pct: vec![],
            data_sizes: vec![2_000, 8_000, 16_000],
            periods_per_point: 3,
            warmup_periods: 2,
            seed: 4,
        };
        let samples = profile_buffer_delay(&cfg, 3);
        assert!(!samples.is_empty());
        let mean_at = |t: f64| {
            let v: Vec<f64> = samples
                .iter()
                .filter(|s| (s.total_tracks - t).abs() < 1.0)
                .map(|s| s.delay_ms)
                .collect();
            v.iter().sum::<f64>() / v.len().max(1) as f64
        };
        let lo = mean_at(2_000.0);
        let hi = mean_at(16_000.0);
        assert!(
            hi > 2.0 * lo.max(0.01),
            "buffer delay should grow with offered load: {lo} -> {hi}"
        );
    }
}
