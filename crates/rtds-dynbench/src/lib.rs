//! # rtds-dynbench — synthetic DynBench/AAW benchmark application
//!
//! The paper obtains its profile data from DynBench, a real-time benchmark
//! modeled on the U.S. Navy's Anti-Air Warfare (AAW) system. This crate is
//! the in-simulator equivalent:
//!
//! * [`app`] — the five-subtask AAW pipeline of Table 1 (Radar →
//!   Preprocess → **Filter** → Correlate → **EvalDecide**, the bold pair
//!   replicable) with calibrated intrinsic cost models;
//! * [`profile`] — the measurement campaign: execution-latency grids over
//!   (data size × CPU utilization) and buffer-delay sweeps over total
//!   periodic workload, run against `rtds-sim`;
//! * [`paper`] — the paper's published Table 2/3 regression coefficients,
//!   verbatim;
//! * [`data`] — persistence of profile campaigns and their fitted models.
//!
//! Substitution note (see DESIGN.md): the paper measures a physical
//! testbed; we measure the simulator. The predictive algorithm consumes
//! only the resulting profile data, so the downstream code path is
//! identical.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod app;
pub mod data;
pub mod paper;
pub mod profile;

pub use app::{aaw_task, eval_decide_cost, filter_cost, surveillance_task, two_stage_task, EVAL_DECIDE_STAGE, FILTER_STAGE};
pub use data::ProfileData;
pub use profile::{profile_buffer_delay, profile_execution, ProfileConfig};
