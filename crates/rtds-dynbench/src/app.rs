//! The synthetic DynBench/AAW benchmark application.
//!
//! The paper profiles "a real-time benchmark application that has resulted
//! from our past work \[SWR99\]" (DynBench), modeled on the U.S. Navy's
//! Anti-Air Warfare system: a periodic sensing pipeline that filters radar
//! tracks, correlates them, and evaluates/decides on threats. Table 1 gives
//! its shape — one periodic task, five subtasks in series, two of them
//! replicable — and Figs. 2–3 profile the *Filter* and *EvalDecide*
//! subtasks, which Table 2 identifies as subtasks **3** and **5**.
//!
//! We reproduce that shape synthetically: each subtask gets an intrinsic
//! CPU-cost polynomial in the data size. Filter and EvalDecide carry
//! quadratic terms (track filtering and threat evaluation are
//! super-linear in the number of tracks), which is precisely what makes
//! replication pay off and what Eq. (3)'s `d²` term models.

use rtds_sim::ids::{NodeId, TaskId};
use rtds_sim::pipeline::{PolynomialCost, StageSpec, TaskSpec};
use rtds_sim::time::SimDuration;

/// Pipeline positions of the two replicable subtasks (0-based): Filter is
/// the paper's subtask 3, EvalDecide its subtask 5.
pub const FILTER_STAGE: usize = 2;
/// See [`FILTER_STAGE`].
pub const EVAL_DECIDE_STAGE: usize = 4;

/// Intrinsic cost of the *Filter* subtask (ms, `h` = hundreds of tracks):
/// `0.010·h² + 0.9·h`.
pub fn filter_cost() -> PolynomialCost {
    PolynomialCost::new(0.010, 0.9, 0.0)
}

/// Intrinsic cost of the *EvalDecide* subtask: `0.006·h² + 1.2·h`.
pub fn eval_decide_cost() -> PolynomialCost {
    PolynomialCost::new(0.006, 1.2, 0.0)
}

/// Builds the five-subtask AAW pipeline of Table 1.
///
/// Stage homes follow the natural one-subtask-per-node deployment on the
/// paper's 6-node cluster, leaving node 5 as spare capacity:
///
/// | # | subtask     | cost (ms)            | replicable | home |
/// |---|-------------|----------------------|------------|------|
/// | 1 | Radar       | 0.08·h + 2           | no         | p0   |
/// | 2 | Preprocess  | 0.15·h + 3           | no         | p1   |
/// | 3 | Filter      | 0.010·h² + 0.9·h     | **yes**    | p2   |
/// | 4 | Correlate   | 0.20·h + 4           | no         | p3   |
/// | 5 | EvalDecide  | 0.006·h² + 1.2·h     | **yes**    | p4   |
///
/// Tracks are 80 bytes (Table 1); every stage forwards the full stream
/// except EvalDecide, which emits compact engagement orders.
pub fn aaw_task() -> TaskSpec {
    TaskSpec {
        id: TaskId(0),
        name: "aaw".into(),
        period: SimDuration::from_secs(1),
        deadline: SimDuration::from_millis(990),
        track_bytes: 80,
        stages: vec![
            StageSpec {
                name: "Radar".into(),
                cost: PolynomialCost::linear(0.08, 2.0),
                replicable: false,
                home: NodeId(0),
                output_bytes_per_track: 80.0,
            },
            StageSpec {
                name: "Preprocess".into(),
                cost: PolynomialCost::linear(0.15, 3.0),
                replicable: false,
                home: NodeId(1),
                output_bytes_per_track: 80.0,
            },
            StageSpec {
                name: "Filter".into(),
                cost: filter_cost(),
                replicable: true,
                home: NodeId(2),
                output_bytes_per_track: 80.0,
            },
            StageSpec {
                name: "Correlate".into(),
                cost: PolynomialCost::linear(0.20, 4.0),
                replicable: false,
                home: NodeId(3),
                output_bytes_per_track: 80.0,
            },
            StageSpec {
                name: "EvalDecide".into(),
                cost: eval_decide_cost(),
                replicable: true,
                home: NodeId(4),
                output_bytes_per_track: 16.0,
            },
        ],
    }
}

/// A secondary, lighter periodic task for multi-task experiments: a
/// three-subtask surveillance-report pipeline (Sense → Track → Report)
/// whose middle subtask is replicable. Homes overlap the AAW task's upper
/// nodes, so the two tasks genuinely contend. The paper's model (§3) is a
/// *set* of periodic tasks even though its evaluation uses one; this is
/// the second member of that set.
pub fn surveillance_task(id: TaskId) -> TaskSpec {
    TaskSpec {
        id,
        name: "surveillance".into(),
        period: SimDuration::from_secs(1),
        deadline: SimDuration::from_millis(990),
        track_bytes: 80,
        stages: vec![
            StageSpec {
                name: "Sense".into(),
                cost: PolynomialCost::linear(0.05, 1.0),
                replicable: false,
                home: NodeId(5),
                output_bytes_per_track: 80.0,
            },
            StageSpec {
                name: "Track".into(),
                cost: PolynomialCost::new(0.004, 0.5, 0.0),
                replicable: true,
                home: NodeId(3),
                output_bytes_per_track: 40.0,
            },
            StageSpec {
                name: "Report".into(),
                cost: PolynomialCost::linear(0.10, 2.0),
                replicable: false,
                home: NodeId(1),
                output_bytes_per_track: 8.0,
            },
        ],
    }
}

/// A reduced two-stage pipeline (Preprocess → Filter) used by unit tests
/// and the buffer-delay profiler, where a full AAW run would be noise.
pub fn two_stage_task() -> TaskSpec {
    let full = aaw_task();
    TaskSpec {
        id: TaskId(0),
        name: "aaw-2stage".into(),
        period: full.period,
        deadline: full.deadline,
        track_bytes: full.track_bytes,
        stages: vec![full.stages[1].clone(), full.stages[FILTER_STAGE].clone()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtds_sim::ids::SubtaskIdx;

    #[test]
    fn aaw_matches_table1_shape() {
        let t = aaw_task();
        assert_eq!(t.n_stages(), 5);
        assert_eq!(t.period, SimDuration::from_secs(1));
        assert_eq!(t.deadline, SimDuration::from_millis(990));
        assert_eq!(t.track_bytes, 80);
        assert_eq!(
            t.replicable_stages(),
            vec![
                SubtaskIdx::from_index(FILTER_STAGE),
                SubtaskIdx::from_index(EVAL_DECIDE_STAGE)
            ],
            "exactly subtasks 3 and 5 are replicable"
        );
        assert!(t.validate(6).is_ok());
    }

    #[test]
    fn replicable_subtasks_are_paper_numbers_3_and_5() {
        let t = aaw_task();
        assert_eq!(t.stages[FILTER_STAGE].name, "Filter");
        assert_eq!(SubtaskIdx::from_index(FILTER_STAGE).paper_number(), 3);
        assert_eq!(t.stages[EVAL_DECIDE_STAGE].name, "EvalDecide");
        assert_eq!(SubtaskIdx::from_index(EVAL_DECIDE_STAGE).paper_number(), 5);
    }

    #[test]
    fn quadratic_stages_dominate_at_high_workload() {
        let t = aaw_task();
        let high = 17_500; // max workload of the sweep: 35 x 500 tracks
        let filter = t.stages[FILTER_STAGE].cost.demand(high);
        let linear_total: SimDuration = [0usize, 1, 3]
            .iter()
            .map(|&i| t.stages[i].cost.demand(high))
            .fold(SimDuration::ZERO, |a, b| a + b);
        assert!(
            filter > linear_total * 4,
            "filter {filter} should dwarf linear stages {linear_total}"
        );
    }

    #[test]
    fn single_node_infeasible_at_max_feasible_with_replication() {
        // The calibration contract: at the sweep's maximum workload the
        // un-replicated pipeline exceeds the 990 ms deadline on CPU alone,
        // while splitting the two quadratic stages five ways fits easily.
        let t = aaw_task();
        let d = 17_500u64;
        let total: f64 = t
            .stages
            .iter()
            .map(|s| s.cost.demand(d).as_millis_f64())
            .sum();
        assert!(total > 900.0, "serial CPU demand {total} ms");
        let with_repl: f64 = t
            .stages
            .iter()
            .enumerate()
            .map(|(i, s)| {
                if s.replicable {
                    let _ = i;
                    s.cost.demand(d / 5).as_millis_f64()
                } else {
                    s.cost.demand(d).as_millis_f64()
                }
            })
            .sum();
        assert!(with_repl < 400.0, "replicated CPU demand {with_repl} ms");
    }

    #[test]
    fn low_workload_is_trivially_feasible() {
        let t = aaw_task();
        let total: f64 = t
            .stages
            .iter()
            .map(|s| s.cost.demand(500).as_millis_f64())
            .sum();
        assert!(total < 30.0, "500-track demand {total} ms");
    }

    #[test]
    fn homes_are_distinct_leaving_a_spare() {
        let t = aaw_task();
        let mut homes: Vec<_> = t.stages.iter().map(|s| s.home).collect();
        homes.sort();
        homes.dedup();
        assert_eq!(homes.len(), 5, "five distinct home nodes");
        assert!(homes.iter().all(|h| h.index() < 5), "node 5 stays spare");
    }

    #[test]
    fn surveillance_task_is_valid_and_lighter() {
        let s = surveillance_task(TaskId(1));
        assert!(s.validate(6).is_ok());
        assert_eq!(s.n_stages(), 3);
        assert_eq!(s.replicable_stages(), vec![SubtaskIdx(1)]);
        // Much lighter than AAW at the same workload.
        let aaw_total: f64 = aaw_task().stages.iter()
            .map(|st| st.cost.demand(10_000).as_millis_f64()).sum();
        let surv_total: f64 = s.stages.iter()
            .map(|st| st.cost.demand(10_000).as_millis_f64()).sum();
        assert!(surv_total < 0.5 * aaw_total, "{surv_total} vs {aaw_total}");
    }

    #[test]
    fn two_stage_variant_is_consistent() {
        let t = two_stage_task();
        assert_eq!(t.n_stages(), 2);
        assert_eq!(t.stages[1].name, "Filter");
        assert!(t.stages[1].replicable);
        assert!(t.validate(6).is_ok());
    }
}
