//! The paper's published regression coefficients (Tables 2 and 3).
//!
//! The authors measured these on their DynBench testbed; we ship them
//! verbatim so experiments can run with the paper's exact numbers as well
//! as with coefficients re-fitted against our simulator (see
//! [`crate::profile`]).
//!
//! ## Unit reconciliation
//!
//! The paper states Eq. (3) takes "CPU utilization in percentage", but
//! with `u ∈ [0, 100]` the Table 2 coefficients produce *negative*
//! latencies well inside the envelope plotted in Figs. 2–4 (e.g. subtask 3
//! at `u = 80, d = 20` gives −83 ms). With `u` as a **fraction** in
//! `[0, 1]` the same coefficients yield positive latencies of the
//! magnitude the figures show (~700 ms at the top of Fig. 2's range), so
//! the coefficients were evidently fitted against fractional utilization.
//! The constants below are therefore rescaled (`a1/10⁴, a2/10², a3` and
//! likewise for `b`) so that the exported models take utilization in
//! percent like every other model in this repository. Even so, the
//! paper's fitted surface is nearly flat in `u` — a limitation of their
//! measured data that our re-fitted models do not share.

use rtds_regression::buffer::BufferDelayModel;
use rtds_regression::model::ExecLatencyModel;

/// Table 2, subtask 3 (Filter), as printed: `a1, a2, a3` (fractional `u`).
pub const FILTER_A_RAW: [f64; 3] = [-0.00155, 1.535e-05, 0.11816174];
/// Table 2, subtask 3 (Filter), as printed: `b1, b2, b3` (fractional `u`).
pub const FILTER_B_RAW: [f64; 3] = [0.0298276, -0.000285, 0.983699];
/// Table 2, subtask 5 (EvalDecide), as printed: `a1, a2, a3`.
pub const EVAL_DECIDE_A_RAW: [f64; 3] = [0.002123, -1.596e-05, 0.022324];
/// Table 2, subtask 5 (EvalDecide), as printed: `b1, b2, b3`.
pub const EVAL_DECIDE_B_RAW: [f64; 3] = [-0.023927, 0.000108, 1.443762];

/// Table 3: buffer-delay slope `k` for both replicable subtasks, in ms per
/// hundred tracks of total periodic workload (the paper leaves the unit
/// implicit; per-track the delays it implies would exceed the period by
/// orders of magnitude, so hundreds-of-tracks — Eq. (3)'s data unit — is
/// the only consistent reading).
pub const BUFFER_SLOPE_K: f64 = 0.7;

/// Rescales printed (fractional-`u`) coefficients to percent-`u`.
fn to_percent_units(c: [f64; 3]) -> [f64; 3] {
    [c[0] / 1e4, c[1] / 1e2, c[2]]
}

/// Eq. (3) model with the paper's Table 2 coefficients for subtask 3
/// (Filter), taking utilization in percent.
pub fn filter_model() -> ExecLatencyModel {
    ExecLatencyModel::from_coefficients(
        to_percent_units(FILTER_A_RAW),
        to_percent_units(FILTER_B_RAW),
    )
}

/// Eq. (3) model with the paper's Table 2 coefficients for subtask 5
/// (EvalDecide), taking utilization in percent.
pub fn eval_decide_model() -> ExecLatencyModel {
    ExecLatencyModel::from_coefficients(
        to_percent_units(EVAL_DECIDE_A_RAW),
        to_percent_units(EVAL_DECIDE_B_RAW),
    )
}

/// Eq. (5) model with the paper's Table 3 slope, converted to ms/track.
pub fn buffer_model() -> BufferDelayModel {
    BufferDelayModel::from_slope(BUFFER_SLOPE_K / 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_model_is_positive_across_fig2_envelope() {
        let m = filter_model();
        // Fig. 2's regime: 80 % utilization, up to ~25 scale units of 300
        // tracks = 75 hundreds of tracks.
        for d in [5.0, 20.0, 50.0, 75.0] {
            let p = m.predict_raw(d, 80.0);
            assert!(p > 0.0, "predict_raw({d}, 80) = {p}");
        }
        // Latency at the top of Fig. 2's range lands in the hundreds of ms.
        let p = m.predict(75.0, 80.0);
        assert!((200.0..2_000.0).contains(&p), "predict(75, 80) = {p} ms");
    }

    #[test]
    fn raw_percent_reading_would_go_negative_demonstrating_rescale_need() {
        // Sanity check of the unit-reconciliation argument in the module
        // docs: the printed coefficients with u in percent are negative
        // inside the figure's envelope.
        let wrong = ExecLatencyModel::from_coefficients(FILTER_A_RAW, FILTER_B_RAW);
        assert!(wrong.predict_raw(20.0, 80.0) < 0.0);
    }

    #[test]
    fn eval_decide_model_reasonable_at_fig3_regime() {
        let m = eval_decide_model();
        // Fig. 3: 60 % utilization, up to ~60 hundreds of tracks.
        let p = m.predict(60.0, 60.0);
        assert!((50.0..1_000.0).contains(&p), "predict(60, 60) = {p} ms");
        assert!(m.predict(60.0, 60.0) > m.predict(10.0, 60.0));
    }

    #[test]
    fn models_grow_with_data_size() {
        for m in [filter_model(), eval_decide_model()] {
            assert!(m.predict(40.0, 50.0) > m.predict(10.0, 50.0));
            assert!(m.predict(10.0, 50.0) > 0.0);
        }
    }

    #[test]
    fn rescaled_models_stay_positive_over_physical_utilizations() {
        // In the rescaled reading, the negative a1 term only dominates at
        // utilizations far above 100 % — i.e. never in operation. The
        // whole physical domain is safe.
        for m in [filter_model(), eval_decide_model()] {
            for u in [0.0, 25.0, 50.0, 75.0, 100.0] {
                for d in [1.0, 10.0, 100.0, 500.0] {
                    assert!(m.predict_raw(d, u) > 0.0, "raw({d}, {u}) negative");
                }
            }
        }
    }

    #[test]
    fn buffer_model_uses_table3_slope() {
        let b = buffer_model();
        // 1000 tracks = 10 hundreds -> 7 ms.
        assert!((b.predict_ms(1_000.0) - 7.0).abs() < 1e-9);
        assert_eq!(b.predict_ms(0.0), 0.0);
    }
}
